use hsc_mem::{Addr, CacheArray, CacheGeometry, LineAddr, LineData, Mshr, VictimBuffer};
use hsc_noc::{
    AgentId, ClassCounters, Message, MsgKind, Outbox, ProbeKind, RetryPolicy, RetryTracker,
};
use hsc_sim::{CounterId, Counters, StatSet, Tick, TransitionMatrix};

use crate::{cpu_cycles, CoreProgram, CpuOp, MoesiState};

/// State vocabulary of the CorePair's transition matrix: I (absent from
/// the L2) plus the four [`MoesiState`] variants.
const MOESI_STATES: &[&str] = &["I", "S", "E", "O", "M"];
/// Cause vocabulary: what made an L2 line change state.
const MOESI_CAUSES: &[&str] = &["Fill", "SilentEM", "UpgradeAck", "ProbeInv", "ProbeDown", "Evict"];

const ST_I: usize = 0;
const ST_S: usize = 1;
const ST_E: usize = 2;
const ST_O: usize = 3;
const ST_M: usize = 4;
const CAUSE_FILL: usize = 0;
const CAUSE_SILENT_EM: usize = 1;
const CAUSE_UPGRADE_ACK: usize = 2;
const CAUSE_PROBE_INV: usize = 3;
const CAUSE_PROBE_DOWN: usize = 4;
const CAUSE_EVICT: usize = 5;

/// Dense matrix index of a present line's state.
fn st(s: MoesiState) -> usize {
    match s {
        MoesiState::Shared => ST_S,
        MoesiState::Exclusive => ST_E,
        MoesiState::Owned => ST_O,
        MoesiState::Modified => ST_M,
    }
}

/// Base byte address of the synthetic per-core instruction regions.
///
/// Placed far above any workload data so I-fetch RdBlkS traffic never
/// aliases with data lines.
const CODE_REGION_BASE: u64 = 0x4000_0000_0000;

/// Configuration of one CorePair (Table II defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// L1 data cache size in bytes (per core).
    pub l1d_bytes: u64,
    /// L1 data cache associativity.
    pub l1d_ways: usize,
    /// Shared L1 instruction cache size in bytes.
    pub l1i_bytes: u64,
    /// Shared L1 instruction cache associativity.
    pub l1i_ways: usize,
    /// Shared inclusive L2 size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L1 access latency in CPU cycles.
    pub l1_cycles: u64,
    /// L2 access latency in CPU cycles.
    pub l2_cycles: u64,
    /// One synthetic instruction fetch is issued every this many retired
    /// ops (exercises the RdBlkS path of §II-A).
    pub ifetch_interval: u64,
    /// Number of distinct code lines each core cycles through.
    pub code_lines: u64,
    /// MSHR capacity of the L2.
    pub mshr_capacity: usize,
    /// Optional request retry under fault injection. `None` (the default)
    /// disables all retry bookkeeping and wake-ups, so fault-free runs
    /// are bit-identical to a build without the retry layer.
    pub retry: Option<RetryPolicy>,
}

impl Default for CpuConfig {
    /// Table II: 64 KB/2-way L1D, 32 KB/2-way L1I, 2 MB/8-way L2, 1-cycle
    /// L1/L2 access latencies.
    fn default() -> Self {
        CpuConfig {
            l1d_bytes: 64 * 1024,
            l1d_ways: 2,
            l1i_bytes: 32 * 1024,
            l1i_ways: 2,
            l2_bytes: 2 * 1024 * 1024,
            l2_ways: 8,
            l1_cycles: 1,
            l2_cycles: 1,
            ifetch_interval: 32,
            code_lines: 64,
            mshr_capacity: 16,
            retry: None,
        }
    }
}

#[derive(Debug, Clone, Hash)]
struct L2Line {
    state: MoesiState,
    data: LineData,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TxnKind {
    Read,
    ReadInstr,
    Write,
}

#[derive(Debug)]
struct L2Txn {
    kind: TxnKind,
    waiters: Vec<usize>,
}

#[derive(Debug)]
struct CoreCtx {
    program: Box<dyn CoreProgram>,
    ready_at: Tick,
    blocked_line: Option<LineAddr>,
    last_value: Option<u64>,
    pending: Option<CpuOp>,
    pending_ifetch: bool,
    done: bool,
    ops_since_ifetch: u64,
    next_code_line: u64,
    code_base: LineAddr,
    ops_retired: u64,
}

/// A CorePair: two in-order cores, private L1Ds, a shared L1I and a
/// shared, inclusive MOESI L2 — the unit the system-level directory sees
/// as one `AgentId::CorePairL2`.
///
/// The L1s are tag-only latency filters (the L2 is inclusive and holds the
/// authoritative data); all coherence happens at the L2:
///
/// * load misses send `RdBlk`, store misses/upgrades send `RdBlkM`,
///   I-fetch misses send `RdBlkS`;
/// * Exclusive lines silently upgrade to Modified on stores;
/// * evictions notify the directory noisily (`VicClean` from E/S,
///   `VicDirty` from M/O) and park the line in a victim buffer that
///   incoming probes snoop until the directory acknowledges the victim —
///   this closes the writeback/probe race;
/// * downgrade probes move M→O (the dirty cache stays owner and forwards
///   data), invalidating probes forward dirty data and invalidate.
#[derive(Debug)]
pub struct CorePair {
    agent: AgentId,
    cfg: CpuConfig,
    cores: Vec<CoreCtx>,
    l1d: Vec<CacheArray<()>>,
    l1i: CacheArray<()>,
    l2: CacheArray<L2Line>,
    mshr: Mshr<L2Txn>,
    victims: VictimBuffer,
    retry: RetryTracker,
    counters: Counters,
    ids: CpIds,
    /// MOESI state-transition analytics; disabled (and free) by default,
    /// excluded from `hash_state` and `stats`.
    transitions: TransitionMatrix,
}

/// Interned counter ids for every key a CorePair ever bumps, so the
/// per-message and per-op paths never build a string key.
#[derive(Debug)]
struct CpIds {
    loads: CounterId,
    stores: CounterId,
    atomics: CounterId,
    compute_ops: CounterId,
    done: CounterId,
    l1d_hits: CounterId,
    l1d_misses: CounterId,
    l1i_hits: CounterId,
    l1i_misses: CounterId,
    l2_hits: CounterId,
    l2_misses: CounterId,
    upgrades: CounterId,
    silent_e_to_m: CounterId,
    vic_clean: CounterId,
    vic_dirty: CounterId,
    probes_received: CounterId,
    probe_invalidations: CounterId,
    retries: CounterId,
    stale_resps: CounterId,
    unexpected_msgs: CounterId,
    unexpected: ClassCounters,
    req: ClassCounters,
}

impl CpIds {
    /// Registers every CorePair counter. The fixed per-pair keys are
    /// visible (exported at 0, so reports and time series list quiet
    /// counters instead of omitting them); diagnostic and per-class
    /// request keys stay hidden until first bumped.
    fn register(counters: &mut Counters) -> Self {
        CpIds {
            loads: counters.register("core.loads"),
            stores: counters.register("core.stores"),
            atomics: counters.register("core.atomics"),
            compute_ops: counters.register("core.compute_ops"),
            done: counters.register("core.done"),
            l1d_hits: counters.register("l1d.hits"),
            l1d_misses: counters.register("l1d.misses"),
            l1i_hits: counters.register("l1i.hits"),
            l1i_misses: counters.register("l1i.misses"),
            l2_hits: counters.register("l2.hits"),
            l2_misses: counters.register("l2.misses"),
            upgrades: counters.register("l2.upgrades"),
            silent_e_to_m: counters.register("l2.silent_e_to_m"),
            vic_clean: counters.register("l2.vic_clean"),
            vic_dirty: counters.register("l2.vic_dirty"),
            probes_received: counters.register("l2.probes_received"),
            probe_invalidations: counters.register("l2.probe_invalidations"),
            retries: counters.register("l2.retries"),
            stale_resps: counters.register_hidden("l2.stale_resps"),
            unexpected_msgs: counters.register_hidden("l2.unexpected_msgs"),
            unexpected: ClassCounters::register_hidden(counters, "l2.unexpected"),
            req: ClassCounters::register_hidden(counters, "l2.req"),
        }
    }
}

impl CorePair {
    /// Creates CorePair number `index` running the given thread programs
    /// (at most two — Table III has two cores per pair; fewer threads
    /// leave cores idle).
    ///
    /// # Panics
    ///
    /// Panics if more than two programs are supplied.
    #[must_use]
    pub fn new(index: usize, programs: Vec<Box<dyn CoreProgram>>, cfg: CpuConfig) -> Self {
        assert!(programs.len() <= 2, "a CorePair has two cores");
        let mut counters = Counters::new();
        let ids = CpIds::register(&mut counters);
        let cores = programs
            .into_iter()
            .enumerate()
            .map(|(c, program)| CoreCtx {
                program,
                ready_at: Tick::ZERO,
                blocked_line: None,
                last_value: None,
                pending: None,
                pending_ifetch: false,
                done: false,
                ops_since_ifetch: 0,
                next_code_line: 0,
                code_base: Addr(CODE_REGION_BASE + ((index * 2 + c) as u64) * cfg.code_lines * 64)
                    .line(),
                ops_retired: 0,
            })
            .collect();
        CorePair {
            agent: AgentId::CorePairL2(index),
            cfg,
            cores,
            l1d: (0..2)
                .map(|_| CacheArray::new(CacheGeometry::new(cfg.l1d_bytes, cfg.l1d_ways)))
                .collect(),
            l1i: CacheArray::new(CacheGeometry::new(cfg.l1i_bytes, cfg.l1i_ways)),
            l2: CacheArray::new(CacheGeometry::new(cfg.l2_bytes, cfg.l2_ways)),
            mshr: Mshr::new(cfg.mshr_capacity),
            victims: VictimBuffer::new(),
            retry: RetryTracker::maybe(cfg.retry),
            counters,
            ids,
            transitions: TransitionMatrix::new("moesi-l2", MOESI_STATES, MOESI_CAUSES),
        }
    }

    /// Switches on the MOESI transition matrix (protocol analytics).
    pub fn enable_analytics(&mut self) {
        self.transitions.enable();
    }

    /// This L2's state-transition matrix (all-zero unless
    /// [`CorePair::enable_analytics`] ran).
    #[must_use]
    pub fn transitions(&self) -> &TransitionMatrix {
        &self.transitions
    }

    /// Occupied MSHR entries (an occupancy gauge for the epoch sampler).
    #[must_use]
    pub fn mshr_occupancy(&self) -> u64 {
        self.mshr.len() as u64
    }

    /// Victim-buffer entries awaiting write-back (an occupancy gauge for
    /// the epoch sampler).
    #[must_use]
    pub fn victim_occupancy(&self) -> u64 {
        self.victims.len() as u64
    }

    /// The NoC endpoint of this CorePair's L2.
    #[must_use]
    pub fn agent(&self) -> AgentId {
        self.agent
    }

    /// Schedules the initial wake-up; call once before the run starts.
    pub fn start(&mut self, out: &mut Outbox) {
        out.wake_after(0);
    }

    /// Whether every core has retired its program and no transaction or
    /// victim write-back is outstanding.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cores.iter().all(|c| c.done) && self.mshr.is_empty() && self.victims.is_empty()
    }

    /// Per-pair statistics (`l2.hits`, `l2.misses`, `core.ops`, …).
    #[must_use]
    pub fn stats(&self) -> StatSet {
        self.counters.export()
    }

    /// Total ops retired by both cores.
    #[must_use]
    pub fn ops_retired(&self) -> u64 {
        self.cores.iter().map(|c| c.ops_retired).sum()
    }

    /// Human-readable descriptions of everything still outstanding at
    /// this L2 (in-flight MSHR transactions and parked victims), for the
    /// watchdog's deadlock snapshot.
    pub fn pending_lines(&self) -> Vec<(LineAddr, String)> {
        let mut v: Vec<(LineAddr, String)> = self
            .mshr
            .iter()
            .map(|(la, txn)| (la, format!("{:?} miss, {} waiter(s)", txn.kind, txn.waiters.len())))
            .collect();
        v.extend(self.victims.lines().map(|la| (la, String::from("parked victim write-back"))));
        v
    }

    /// Direct lookup of a dirty copy of `la` (M/O in the L2 or dirty in
    /// the victim buffer), for end-of-run memory reconstruction.
    #[must_use]
    pub fn peek_dirty(&self, la: LineAddr) -> Option<LineData> {
        if let Some(line) = self.l2.get(la) {
            if line.state.forwards_dirty() {
                return Some(line.data);
            }
        }
        self.victims.get(la).filter(|e| e.dirty).map(|e| e.data)
    }

    /// Dirty lines still held (M/O in the L2 or dirty in the victim
    /// buffer); used to reconstruct final memory for verification.
    pub fn dirty_lines(&self) -> Vec<(LineAddr, LineData)> {
        self.l2
            .iter()
            .filter(|(_, l)| l.state.forwards_dirty())
            .map(|(la, l)| (la, l.data))
            .collect()
    }

    /// Every valid line in the L2 with its MOESI state and data, in
    /// address order — the protocol-visible cache contents the model
    /// checker's SWMR and value-coherence invariants range over.
    pub fn l2_snapshot(&self) -> Vec<(LineAddr, MoesiState, LineData)> {
        self.l2.iter().map(|(la, l)| (la, l.state, l.data)).collect()
    }

    /// Entries parked in the victim buffer, in address order.
    pub fn victim_snapshot(&self) -> Vec<(LineAddr, hsc_mem::VictimEntry)> {
        self.victims.iter().map(|(la, &e)| (la, e)).collect()
    }

    /// Lines with an in-flight L2 miss transaction, in address order.
    pub fn mshr_lines(&self) -> Vec<LineAddr> {
        self.mshr.iter().map(|(la, _)| la).collect()
    }

    /// Folds all protocol-relevant state into `h` for the system state
    /// fingerprint. Deliberately *excludes* timing (`ready_at`), the retry
    /// tracker's deadlines and statistics, so states that differ only in
    /// when things happen hash alike; cache arrays (including the tag-only
    /// L1s, whose hit pattern steers L2 recency) are hashed with their
    /// placement and replacement bits, which decide future evictions.
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        for c in &self.cores {
            c.done.hash(h);
            c.blocked_line.hash(h);
            c.last_value.hash(h);
            c.pending.hash(h);
            c.pending_ifetch.hash(h);
            c.ops_since_ifetch.hash(h);
            c.next_code_line.hash(h);
            c.ops_retired.hash(h);
        }
        for l1 in &self.l1d {
            l1.hash_state(h);
        }
        self.l1i.hash_state(h);
        self.l2.hash_state(h);
        for (la, txn) in self.mshr.iter() {
            (la, txn.kind, &txn.waiters).hash(h);
        }
        for (la, e) in self.victims.iter() {
            (la, e).hash(h);
        }
    }

    /// Handles a message delivered to this CorePair's L2.
    pub fn on_message(&mut self, now: Tick, msg: &Message, out: &mut Outbox) {
        debug_assert_eq!(msg.dst, self.agent);
        match msg.kind {
            MsgKind::Resp { data, grant } => self.on_resp(now, msg.line, data, grant, out),
            MsgKind::UpgradeAck => self.on_upgrade_ack(now, msg.line, out),
            MsgKind::VicAck => {
                self.retry.acked(msg.line);
                self.victims.release(msg.line);
            }
            MsgKind::Probe { kind } => self.on_probe(msg.line, kind, out),
            ref other => {
                // Under fault injection (duplication) or a mis-wired
                // topology a message this agent never expects can arrive;
                // count and drop it instead of aborting the run.
                self.counters.bump(self.ids.unexpected_msgs);
                self.counters.bump(self.ids.unexpected.id(other));
            }
        }
    }

    /// Advances both cores as far as the current tick allows and re-sends
    /// any timed-out requests (when a retry policy is configured).
    pub fn on_wake(&mut self, now: Tick, out: &mut Outbox) {
        self.service_retries(now, out);
        self.step_cores(now, out);
    }

    /// Re-sends overdue requests and schedules the next retry wake-up.
    /// No-op (no wake-ups, no stats) when retry is disabled.
    fn service_retries(&mut self, now: Tick, out: &mut Outbox) {
        if !self.retry.enabled() {
            return;
        }
        for msg in self.retry.due(now) {
            self.counters.bump(self.ids.retries);
            out.send(msg);
        }
        if let Some(d) = self.retry.wake_needed() {
            out.wake_at(d);
        }
    }

    /// Starts retry tracking for a request just sent (no-op when retry is
    /// disabled) and schedules the wake-up that will check its deadline.
    fn track_request(&mut self, msg: Message, out: &mut Outbox) {
        if !self.retry.enabled() {
            return;
        }
        self.retry.track(out.now(), msg);
        if let Some(d) = self.retry.wake_needed() {
            out.wake_at(d);
        }
    }

    fn on_resp(
        &mut self,
        now: Tick,
        la: LineAddr,
        data: LineData,
        grant: hsc_noc::Grant,
        out: &mut Outbox,
    ) {
        self.retry.acked(la);
        let Some(txn) = self.mshr.remove(la) else {
            // Stale or duplicate response (a retried request that raced
            // its original, or a duplicated message under fault
            // injection). The local copy — if any — is at least as fresh
            // as this data, so leave the cache untouched; but the
            // directory opened a transaction for the duplicate request
            // and is waiting on our Unblock, so still send it.
            self.counters.bump(self.ids.stale_resps);
            out.send(Message::new(self.agent, AgentId::Directory, la, MsgKind::Unblock));
            return;
        };
        self.fill_line(la, MoesiState::from_grant(grant), data, out);
        out.send(Message::new(self.agent, AgentId::Directory, la, MsgKind::Unblock));
        self.complete_waiters(now, la, &txn.waiters);
        self.step_cores(now, out);
    }

    fn on_upgrade_ack(&mut self, now: Tick, la: LineAddr, out: &mut Outbox) {
        self.retry.acked(la);
        let Some(txn) = self.mshr.remove(la) else {
            // Stale duplicate (see on_resp); unblock the directory and
            // leave our state alone.
            self.counters.bump(self.ids.stale_resps);
            out.send(Message::new(self.agent, AgentId::Directory, la, MsgKind::Unblock));
            return;
        };
        if let Some(line) = self.l2.get_mut(la) {
            let from = st(line.state);
            line.state = MoesiState::Modified;
            self.transitions.record(from, ST_M, CAUSE_UPGRADE_ACK);
        } else {
            // The line was victimized while the upgrade was in flight
            // (possible only with fault-induced reordering); the write
            // will re-miss and fetch a fresh copy.
            self.counters.bump(self.ids.stale_resps);
        }
        out.send(Message::new(self.agent, AgentId::Directory, la, MsgKind::Unblock));
        self.complete_waiters(now, la, &txn.waiters);
        self.step_cores(now, out);
    }

    fn complete_waiters(&mut self, now: Tick, la: LineAddr, waiters: &[usize]) {
        let fill_lat = cpu_cycles(self.cfg.l1_cycles + self.cfg.l2_cycles);
        for &c in waiters {
            let core = &mut self.cores[c];
            debug_assert_eq!(core.blocked_line, Some(la));
            core.blocked_line = None;
            if core.pending_ifetch {
                // Instruction fetch completes directly: fill the L1I tag.
                core.pending_ifetch = false;
                core.ready_at = now + fill_lat;
                fill_tag(&mut self.l1i, la);
            } else {
                // Data ops re-attempt against the freshly filled L2 (the
                // hit path charges the access latency).
                core.ready_at = now;
            }
        }
    }

    fn step_cores(&mut self, now: Tick, out: &mut Outbox) {
        for i in 0..self.cores.len() {
            self.step_core(i, now, out);
        }
        // One wake-up at the earliest future readiness.
        let next = self
            .cores
            .iter()
            .filter(|c| !c.done && c.blocked_line.is_none())
            .map(|c| c.ready_at)
            .filter(|&t| t > now)
            .min();
        if let Some(t) = next {
            out.wake_at(t);
        }
    }

    fn step_core(&mut self, i: usize, now: Tick, out: &mut Outbox) {
        loop {
            let c = &mut self.cores[i];
            if c.done || c.blocked_line.is_some() || c.ready_at > now {
                return;
            }
            // Periodic synthetic instruction fetch (RdBlkS exerciser).
            if c.ops_since_ifetch >= self.cfg.ifetch_interval && c.pending.is_none() {
                c.ops_since_ifetch = 0;
                let la = LineAddr(c.code_base.0 + (c.next_code_line % self.cfg.code_lines));
                c.next_code_line += 1;
                self.access_ifetch(i, la, now, out);
                continue;
            }
            let c = &mut self.cores[i];
            let (op, first_attempt) = match c.pending.take() {
                Some(op) => (op, false),
                None => {
                    let lv = c.last_value.take();
                    (c.program.next_op(lv), true)
                }
            };
            let c = &mut self.cores[i];
            if first_attempt {
                c.ops_retired += 1;
                c.ops_since_ifetch += 1;
            }
            match op {
                CpuOp::Compute(cy) => {
                    self.counters.bump(self.ids.compute_ops);
                    if cy > 0 {
                        c.ready_at = now + cpu_cycles(cy);
                        return;
                    }
                }
                CpuOp::Done => {
                    c.done = true;
                    self.counters.bump(self.ids.done);
                    return;
                }
                CpuOp::Load(a) => {
                    if first_attempt {
                        self.counters.bump(self.ids.loads);
                    }
                    if self.access_load(i, a, now, out) {
                        return; // hit with latency, or miss (blocked)
                    }
                }
                CpuOp::Store(a, v) => {
                    if first_attempt {
                        self.counters.bump(self.ids.stores);
                    }
                    if self.access_store(i, a, v, now, CpuOp::Store(a, v), out) {
                        return;
                    }
                }
                CpuOp::Atomic(a, k) => {
                    if first_attempt {
                        self.counters.bump(self.ids.atomics);
                    }
                    if self.access_store(i, a, 0, now, CpuOp::Atomic(a, k), out) {
                        return;
                    }
                }
            }
        }
    }

    /// Returns `true` if the core is now waiting (hit latency or miss).
    fn access_load(&mut self, i: usize, a: Addr, now: Tick, out: &mut Outbox) -> bool {
        let la = a.line();
        if let Some(line) = self.l2.get(la) {
            let v = line.data.word_at(a);
            let l1_hit = self.l1d[i].contains(la);
            let lat = if l1_hit {
                self.counters.bump(self.ids.l1d_hits);
                self.l1d[i].touch(la);
                cpu_cycles(self.cfg.l1_cycles)
            } else {
                self.counters.bump(self.ids.l1d_misses);
                fill_tag(&mut self.l1d[i], la);
                cpu_cycles(self.cfg.l1_cycles + self.cfg.l2_cycles)
            };
            self.counters.bump(self.ids.l2_hits);
            self.l2.touch(la);
            let c = &mut self.cores[i];
            c.last_value = Some(v);
            c.ready_at = now + lat;
            true
        } else {
            self.counters.bump(self.ids.l2_misses);
            self.miss(i, la, TxnKind::Read, CpuOp::Load(a), out);
            true
        }
    }

    /// Store/atomic path; `true` if the core is now waiting.
    fn access_store(
        &mut self,
        i: usize,
        a: Addr,
        v: u64,
        now: Tick,
        op: CpuOp,
        out: &mut Outbox,
    ) -> bool {
        let la = a.line();
        let writable = self.l2.get(la).map(|l| l.state.can_write());
        match writable {
            Some(true) => {
                let line = self.l2.get_mut(la).unwrap();
                if line.state == MoesiState::Exclusive {
                    line.state = MoesiState::Modified; // silent E→M (§II-B)
                    self.counters.bump(self.ids.silent_e_to_m);
                    self.transitions.record(ST_E, ST_M, CAUSE_SILENT_EM);
                }
                let c = &mut self.cores[i];
                match op {
                    CpuOp::Store(_, _) => {
                        line.data.set_word_at(a, v);
                        c.last_value = None;
                    }
                    CpuOp::Atomic(_, k) => {
                        let old = line.data.apply_atomic(a, k);
                        c.last_value = Some(old);
                    }
                    _ => unreachable!("access_store only handles stores/atomics"),
                }
                self.counters.bump(self.ids.l2_hits);
                let l1_hit = self.l1d[i].contains(la);
                let lat = if l1_hit {
                    self.l1d[i].touch(la);
                    cpu_cycles(self.cfg.l1_cycles)
                } else {
                    fill_tag(&mut self.l1d[i], la);
                    cpu_cycles(self.cfg.l1_cycles + self.cfg.l2_cycles)
                };
                self.l2.touch(la);
                self.cores[i].ready_at = now + lat;
                true
            }
            Some(false) => {
                // Present but S/O: upgrade.
                self.counters.bump(self.ids.upgrades);
                self.miss(i, la, TxnKind::Write, op, out);
                true
            }
            None => {
                self.counters.bump(self.ids.l2_misses);
                self.miss(i, la, TxnKind::Write, op, out);
                true
            }
        }
    }

    fn access_ifetch(&mut self, i: usize, la: LineAddr, now: Tick, out: &mut Outbox) {
        if self.l1i.contains(la) {
            self.counters.bump(self.ids.l1i_hits);
            self.l1i.touch(la);
            self.cores[i].ready_at = now + cpu_cycles(self.cfg.l1_cycles);
            return;
        }
        if self.l2.contains(la) {
            self.counters.bump(self.ids.l1i_misses);
            self.counters.bump(self.ids.l2_hits);
            fill_tag(&mut self.l1i, la);
            self.l2.touch(la);
            self.cores[i].ready_at = now + cpu_cycles(self.cfg.l1_cycles + self.cfg.l2_cycles);
            return;
        }
        self.counters.bump(self.ids.l1i_misses);
        self.counters.bump(self.ids.l2_misses);
        let c = &mut self.cores[i];
        c.pending_ifetch = true;
        c.blocked_line = Some(la);
        let _ = now;
        if let Some(txn) = self.mshr.get_mut(la) {
            txn.waiters.push(i);
        } else {
            self.mshr
                .alloc(la, L2Txn { kind: TxnKind::ReadInstr, waiters: vec![i] })
                .expect("CorePair MSHR sized for max 2 outstanding ops");
            let msg = Message::new(self.agent, AgentId::Directory, la, MsgKind::RdBlkS);
            out.send(msg);
            self.track_request(msg, out);
            self.counters.bump(self.ids.req.id(&MsgKind::RdBlkS));
        }
    }

    fn miss(&mut self, i: usize, la: LineAddr, kind: TxnKind, op: CpuOp, out: &mut Outbox) {
        let c = &mut self.cores[i];
        c.pending = Some(op);
        c.blocked_line = Some(la);
        if let Some(txn) = self.mshr.get_mut(la) {
            txn.waiters.push(i);
            return;
        }
        self.mshr
            .alloc(la, L2Txn { kind, waiters: vec![i] })
            .expect("CorePair MSHR sized for max 2 outstanding ops");
        let msg = match kind {
            TxnKind::Read => MsgKind::RdBlk,
            TxnKind::ReadInstr => MsgKind::RdBlkS,
            TxnKind::Write => MsgKind::RdBlkM,
        };
        self.counters.bump(self.ids.req.id(&msg));
        let msg = Message::new(self.agent, AgentId::Directory, la, msg);
        out.send(msg);
        self.track_request(msg, out);
    }

    fn fill_line(&mut self, la: LineAddr, state: MoesiState, data: LineData, out: &mut Outbox) {
        if let Some(line) = self.l2.get_mut(la) {
            self.transitions.record(st(line.state), st(state), CAUSE_FILL);
            // Upgrade response for a line still held (S/O → M). An Owned
            // line is *dirtier* than anything the directory can send (the
            // stateless directory reads the possibly-stale LLC/memory for
            // RdBlkM data): the local copy must win or earlier stores are
            // lost. Clean S/E copies take the response data, which the
            // probe round guarantees is the freshest in the system.
            if !line.state.forwards_dirty() {
                line.data = data;
            }
            line.state = state;
            self.l2.touch(la);
            return;
        }
        if self.l2.set_is_full(la) {
            // Victimize, avoiding lines with in-flight transactions.
            let mshr = &self.mshr;
            let (vtag, _) = self
                .l2
                .would_evict_scored(la, |tag, _| u32::from(mshr.contains(tag)))
                .expect("set is full, so some line must be evictable");
            let vline = self.l2.invalidate(vtag).unwrap();
            self.transitions.record(st(vline.state), ST_I, CAUSE_EVICT);
            let dirty = vline.state.forwards_dirty();
            let kind = if dirty {
                self.counters.bump(self.ids.vic_dirty);
                MsgKind::VicDirty { data: vline.data }
            } else {
                self.counters.bump(self.ids.vic_clean);
                MsgKind::VicClean { data: vline.data }
            };
            self.victims.park(vtag, vline.data, dirty);
            let vic = Message::new(self.agent, AgentId::Directory, vtag, kind);
            out.send(vic);
            self.track_request(vic, out);
            for l1 in &mut self.l1d {
                l1.invalidate(vtag);
            }
            self.l1i.invalidate(vtag);
        }
        self.transitions.record(ST_I, st(state), CAUSE_FILL);
        self.l2.insert(la, L2Line { state, data });
        self.l2.touch(la);
    }

    fn on_probe(&mut self, la: LineAddr, kind: ProbeKind, out: &mut Outbox) {
        self.counters.bump(self.ids.probes_received);
        let mut dirty: Option<LineData> = None;
        let mut had_copy = false;
        let mut was_parked = false;
        if let Some(entry) = self.victims.get(la).copied() {
            had_copy = true;
            match kind {
                ProbeKind::Invalidate => {
                    was_parked = true;
                    let e = self.victims.invalidate(la).unwrap();
                    if e.dirty {
                        dirty = Some(e.data);
                    }
                    // The probe hands the victim to the directory; the
                    // write-back no longer needs a retry.
                    self.retry.acked(la);
                }
                ProbeKind::Downgrade => {
                    if entry.dirty {
                        dirty = Some(entry.data);
                        self.victims.downgrade(la);
                    }
                }
            }
        } else if let Some(line) = self.l2.get_mut(la) {
            had_copy = true;
            let from = st(line.state);
            // `mutation`: suppressing this forward is the seeded coherence
            // bug the model-checker tests must catch (lost update).
            if line.state.forwards_dirty() && !crate::mutation::drop_dirty_probe_data() {
                dirty = Some(line.data);
            }
            match kind {
                ProbeKind::Invalidate => {
                    self.l2.invalidate(la);
                    for l1 in &mut self.l1d {
                        l1.invalidate(la);
                    }
                    self.l1i.invalidate(la);
                    self.counters.bump(self.ids.probe_invalidations);
                    self.transitions.record(from, ST_I, CAUSE_PROBE_INV);
                }
                ProbeKind::Downgrade => {
                    let line = self.l2.get_mut(la).unwrap();
                    line.state = line.state.after_downgrade();
                    let to = st(line.state);
                    self.transitions.record(from, to, CAUSE_PROBE_DOWN);
                }
            }
        }
        out.send(Message::new(
            self.agent,
            AgentId::Directory,
            la,
            MsgKind::ProbeAck { dirty, had_copy, was_parked },
        ));
    }
}

/// Fills a tag-only L1, silently dropping any displaced tag (the L2 holds
/// the data, so L1 evictions need no protocol action).
fn fill_tag(l1: &mut CacheArray<()>, la: LineAddr) {
    if !l1.contains(la) {
        let _ = l1.insert(la, ());
    }
    l1.touch(la);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsc_mem::{AtomicKind, MainMemory};
    use hsc_noc::{Action, Grant};
    use hsc_sim::WheelQueue;

    /// A scripted program for tests.
    #[derive(Debug)]
    struct Script {
        ops: Vec<CpuOp>,
        idx: usize,
        seen: Vec<Option<u64>>,
    }

    impl Script {
        fn new(ops: Vec<CpuOp>) -> Self {
            Script { ops, idx: 0, seen: Vec::new() }
        }
    }

    impl CoreProgram for Script {
        fn next_op(&mut self, last: Option<u64>) -> CpuOp {
            self.seen.push(last);
            let op = self.ops.get(self.idx).copied().unwrap_or(CpuOp::Done);
            self.idx += 1;
            op
        }
    }

    /// Drives a single CorePair against a trivially coherent fake
    /// directory: every RdBlk→E, RdBlkS→S, RdBlkM→M, probes never sent.
    fn run_pair(mut pair: CorePair, limit: u64) -> (CorePair, MainMemory) {
        let mut mem = MainMemory::new();
        run_pair_with_mem(&mut pair, &mut mem, limit);
        (pair, mem)
    }

    fn run_pair_with_mem(pair: &mut CorePair, mem: &mut MainMemory, limit: u64) {
        #[derive(Debug)]
        enum Ev {
            Wake,
            Msg(Message),
        }
        let mut q: WheelQueue<Ev> = WheelQueue::new();
        q.schedule(Tick(0), Ev::Wake);
        let hop = 10u64;
        let mut steps = 0u64;
        while let Some((now, ev)) = q.pop() {
            steps += 1;
            assert!(steps < limit, "fake-directory run exceeded {limit} events");
            let mut out = Outbox::new(now);
            match ev {
                Ev::Wake => pair.on_wake(now, &mut out),
                Ev::Msg(m) if m.dst == pair.agent() => pair.on_message(now, &m, &mut out),
                Ev::Msg(m) => {
                    // Fake directory.
                    let resp = match m.kind {
                        MsgKind::RdBlk => Some(MsgKind::Resp {
                            data: mem.read_line(m.line),
                            grant: Grant::Exclusive,
                        }),
                        MsgKind::RdBlkS => Some(MsgKind::Resp {
                            data: mem.read_line(m.line),
                            grant: Grant::Shared,
                        }),
                        MsgKind::RdBlkM => Some(MsgKind::Resp {
                            data: mem.read_line(m.line),
                            grant: Grant::Modified,
                        }),
                        MsgKind::VicDirty { data } => {
                            mem.write_line(m.line, data);
                            Some(MsgKind::VicAck)
                        }
                        MsgKind::VicClean { .. } => Some(MsgKind::VicAck),
                        MsgKind::Unblock => None,
                        ref k => panic!("fake directory got {}", k.class_name()),
                    };
                    if let Some(kind) = resp {
                        q.schedule(
                            now + hop,
                            Ev::Msg(Message::new(AgentId::Directory, m.src, m.line, kind)),
                        );
                    }
                }
            }
            for act in out.into_actions() {
                match act {
                    Action::Send(m) => q.schedule(now + hop, Ev::Msg(m)),
                    Action::SendLater(t, m) => q.schedule(t + 5, Ev::Msg(m)),
                    Action::Wake(t) => q.schedule(t, Ev::Wake),
                }
            }
        }
    }

    fn pair_with(programs: Vec<Box<dyn CoreProgram>>) -> CorePair {
        // Tiny caches to exercise evictions in tests.
        let cfg = CpuConfig {
            l2_bytes: 8 * 1024,
            l1d_bytes: 1024,
            l1i_bytes: 1024,
            ifetch_interval: 1000, // mostly out of the way
            ..CpuConfig::default()
        };
        CorePair::new(0, programs, cfg)
    }

    #[test]
    fn store_then_load_round_trips_through_l2() {
        let a = Addr(0x1000);
        let prog = Script::new(vec![CpuOp::Store(a, 42), CpuOp::Load(a), CpuOp::Done]);
        let (pair, _mem) = run_pair(pair_with(vec![Box::new(prog)]), 10_000);
        assert!(pair.is_done());
        assert_eq!(pair.stats().get("core.stores"), 1);
        assert_eq!(pair.stats().get("core.loads"), 1);
        // The load hit the line the store brought in as M.
        assert!(pair.stats().get("l2.hits") >= 1);
        let dirty = pair.dirty_lines();
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].1.word_at(a), 42);
    }

    #[test]
    fn silent_e_to_m_upgrade_on_store_after_load() {
        let a = Addr(0x2000);
        let prog = Script::new(vec![CpuOp::Load(a), CpuOp::Store(a, 7), CpuOp::Done]);
        let (pair, _mem) = run_pair(pair_with(vec![Box::new(prog)]), 10_000);
        assert!(pair.is_done());
        // RdBlk granted E; the store upgraded silently: no RdBlkM issued.
        assert_eq!(pair.stats().get("l2.req.RdBlk"), 1);
        assert_eq!(pair.stats().get("l2.req.RdBlkM"), 0);
        assert_eq!(pair.stats().get("l2.silent_e_to_m"), 1);
    }

    #[test]
    fn atomic_returns_old_value_to_the_program() {
        let a = Addr(0x3000);
        let prog = Script::new(vec![
            CpuOp::Store(a, 10),
            CpuOp::Atomic(a, AtomicKind::FetchAdd(5)),
            CpuOp::Load(a),
            CpuOp::Done,
        ]);
        let mut pair = pair_with(vec![Box::new(prog)]);
        let mut mem = MainMemory::new();
        run_pair_with_mem(&mut pair, &mut mem, 10_000);
        assert!(pair.is_done());
        let d = pair.dirty_lines();
        assert_eq!(d[0].1.word_at(a), 15);
    }

    #[test]
    fn capacity_evictions_send_noisy_victims() {
        // 8 KB / 8-way L2 = 16 sets; write 3 * 128 lines so sets overflow.
        let mut ops = Vec::new();
        for i in 0..384u64 {
            ops.push(CpuOp::Store(Addr(0x10000 + i * 64), i));
        }
        ops.push(CpuOp::Done);
        let (pair, mem) = run_pair(pair_with(vec![Box::new(Script::new(ops))]), 100_000);
        assert!(pair.is_done());
        assert!(pair.stats().get("l2.vic_dirty") > 0, "dirty victims must reach the directory");
        // Every victimized dirty line must have landed in (fake) memory.
        let survivors: std::collections::BTreeSet<u64> =
            pair.dirty_lines().iter().map(|(la, _)| la.0).collect();
        for i in 0..384u64 {
            let a = Addr(0x10000 + i * 64);
            if !survivors.contains(&a.line().0) {
                assert_eq!(mem.read_word(a), i, "victim write-back lost data at {a}");
            }
        }
    }

    #[test]
    fn loads_see_clean_victims_after_refetch() {
        // Store to set-colliding lines (clean loads), then re-load the first.
        let mut ops = Vec::new();
        for i in 0..256u64 {
            ops.push(CpuOp::Load(Addr(0x20000 + i * 64)));
        }
        ops.push(CpuOp::Load(Addr(0x20000)));
        ops.push(CpuOp::Done);
        let (pair, _) = run_pair(pair_with(vec![Box::new(Script::new(ops))]), 100_000);
        assert!(pair.is_done());
        assert!(pair.stats().get("l2.vic_clean") > 0, "clean victims are noisy");
    }

    #[test]
    fn two_cores_share_the_l2() {
        let a = Addr(0x4000);
        let p0 = Script::new(vec![CpuOp::Store(a, 9), CpuOp::Done]);
        // Core 1 spins until it observes core 0's store through the shared L2.
        #[derive(Debug)]
        struct Spin {
            a: Addr,
            tries: u32,
        }
        impl CoreProgram for Spin {
            fn next_op(&mut self, last: Option<u64>) -> CpuOp {
                if last == Some(9) {
                    return CpuOp::Done;
                }
                self.tries += 1;
                assert!(self.tries < 10_000, "spin never observed the store");
                CpuOp::Load(self.a)
            }
        }
        let (pair, _) =
            run_pair(pair_with(vec![Box::new(p0), Box::new(Spin { a, tries: 0 })]), 200_000);
        assert!(pair.is_done());
    }

    #[test]
    fn invalidating_probe_forwards_dirty_and_invalidates() {
        let a = Addr(0x5000);
        let prog = Script::new(vec![CpuOp::Store(a, 3), CpuOp::Done]);
        let mut pair = pair_with(vec![Box::new(prog)]);
        let mut mem = MainMemory::new();
        run_pair_with_mem(&mut pair, &mut mem, 10_000);
        let mut out = Outbox::new(Tick(1_000_000));
        pair.on_message(
            Tick(1_000_000),
            &Message::new(
                AgentId::Directory,
                pair.agent(),
                a.line(),
                MsgKind::Probe { kind: ProbeKind::Invalidate },
            ),
            &mut out,
        );
        let acts = out.into_actions();
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Send(m) => match m.kind {
                MsgKind::ProbeAck { dirty, had_copy, .. } => {
                    assert!(had_copy);
                    assert_eq!(dirty.unwrap().word_at(a), 3);
                }
                ref k => panic!("expected ProbeAck, got {}", k.class_name()),
            },
            other => panic!("expected send, got {other:?}"),
        }
        assert!(pair.dirty_lines().is_empty(), "line invalidated");
    }

    #[test]
    fn downgrade_probe_moves_m_to_o_and_keeps_data() {
        let a = Addr(0x6000);
        let prog = Script::new(vec![CpuOp::Store(a, 5), CpuOp::Done]);
        let mut pair = pair_with(vec![Box::new(prog)]);
        let mut mem = MainMemory::new();
        run_pair_with_mem(&mut pair, &mut mem, 10_000);
        let mut out = Outbox::new(Tick(1_000_000));
        pair.on_message(
            Tick(1_000_000),
            &Message::new(
                AgentId::Directory,
                pair.agent(),
                a.line(),
                MsgKind::Probe { kind: ProbeKind::Downgrade },
            ),
            &mut out,
        );
        match out.actions()[0] {
            Action::Send(ref m) => match m.kind {
                MsgKind::ProbeAck { dirty, had_copy, .. } => {
                    assert!(had_copy);
                    assert!(dirty.is_some());
                }
                ref k => panic!("expected ProbeAck, got {}", k.class_name()),
            },
            ref other => panic!("expected send, got {other:?}"),
        }
        // Still the owner: dirty_lines reports it (O forwards dirty).
        assert_eq!(pair.dirty_lines().len(), 1);
        // A second downgrade probe re-forwards (owner keeps forwarding).
        let mut out2 = Outbox::new(Tick(1_000_001));
        pair.on_message(
            Tick(1_000_001),
            &Message::new(
                AgentId::Directory,
                pair.agent(),
                a.line(),
                MsgKind::Probe { kind: ProbeKind::Downgrade },
            ),
            &mut out2,
        );
        match out2.actions()[0] {
            Action::Send(ref m) => {
                assert!(matches!(m.kind, MsgKind::ProbeAck { dirty: Some(_), .. }));
            }
            ref other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn probe_for_absent_line_acks_no_copy() {
        let mut pair = pair_with(vec![]);
        let mut out = Outbox::new(Tick(0));
        pair.on_message(
            Tick(0),
            &Message::new(
                AgentId::Directory,
                pair.agent(),
                LineAddr(77),
                MsgKind::Probe { kind: ProbeKind::Invalidate },
            ),
            &mut out,
        );
        match out.actions()[0] {
            Action::Send(ref m) => {
                assert!(matches!(m.kind, MsgKind::ProbeAck { dirty: None, had_copy: false, .. }));
            }
            ref other => panic!("expected send, got {other:?}"),
        }
    }

    #[test]
    fn ifetch_issues_rdblks() {
        let cfg = CpuConfig {
            l2_bytes: 8 * 1024,
            l1d_bytes: 1024,
            l1i_bytes: 1024,
            ifetch_interval: 4,
            ..CpuConfig::default()
        };
        let ops: Vec<CpuOp> = (0..32).map(|_| CpuOp::Compute(1)).chain([CpuOp::Done]).collect();
        let pair = CorePair::new(0, vec![Box::new(Script::new(ops))], cfg);
        let (pair, _) = run_pair(pair, 100_000);
        assert!(pair.is_done());
        assert!(pair.stats().get("l2.req.RdBlkS") > 0, "I-fetches must miss at least once");
    }

    #[test]
    fn transition_matrix_tracks_fills_upgrades_and_probes() {
        let a = Addr(0x7000);
        let prog = Script::new(vec![CpuOp::Load(a), CpuOp::Store(a, 7), CpuOp::Done]);
        let mut pair = pair_with(vec![Box::new(prog)]);
        pair.enable_analytics();
        let mut mem = MainMemory::new();
        run_pair_with_mem(&mut pair, &mut mem, 10_000);
        assert!(pair.is_done());
        let t = pair.transitions();
        assert_eq!(t.get(ST_I, ST_E, CAUSE_FILL), 1, "RdBlk granted E fills I→E");
        assert_eq!(t.get(ST_E, ST_M, CAUSE_SILENT_EM), 1, "the store upgrades silently");
        // An invalidating probe then retires the Modified line.
        let mut out = Outbox::new(Tick(1_000_000));
        pair.on_message(
            Tick(1_000_000),
            &Message::new(
                AgentId::Directory,
                pair.agent(),
                a.line(),
                MsgKind::Probe { kind: ProbeKind::Invalidate },
            ),
            &mut out,
        );
        assert_eq!(pair.transitions().get(ST_M, ST_I, CAUSE_PROBE_INV), 1);
        assert_eq!(pair.transitions().total(), 3);
    }

    #[test]
    fn transition_matrix_is_free_and_silent_when_disabled() {
        let a = Addr(0x7000);
        let prog = Script::new(vec![CpuOp::Load(a), CpuOp::Store(a, 7), CpuOp::Done]);
        let (pair, _mem) = run_pair(pair_with(vec![Box::new(prog)]), 10_000);
        assert_eq!(pair.transitions().total(), 0);
        assert!(!pair.transitions().is_enabled());
    }

    #[test]
    fn empty_corepair_is_done_immediately() {
        let pair = pair_with(vec![]);
        assert!(pair.is_done());
        assert_eq!(pair.ops_retired(), 0);
    }
}
