use std::collections::{BTreeMap, BTreeSet, VecDeque};

use hsc_mem::Mshr;
use hsc_mem::{Addr, CacheArray, CacheGeometry, LineAddr, LineData};
use hsc_noc::{
    AgentId, ClassCounters, Message, MsgKind, Outbox, ProbeKind, RetryPolicy, RetryTracker,
    WordMask,
};
use hsc_sim::{CounterId, Counters, StatSet, Tick, TransitionMatrix};

use crate::viper::{TccLine, TcpLine};
use crate::{gpu_cycles, GpuOp, WavefrontProgram};

/// Base byte address of the shared GPU kernel code region (SQC fetches).
const GPU_CODE_BASE: u64 = 0x5000_0000_0000;

/// VIPER TCC transition-matrix vocabulary. `I` is absence from the cache
/// array; `P` is partially valid (write-allocate-without-fetch), `V` fully
/// valid and clean, `D` dirty (words owed to the system).
const VIPER_STATES: &[&str] = &["I", "P", "V", "D"];
const VIPER_CAUSES: &[&str] =
    &["Fill", "WbStore", "ProbeInv", "AtomicSelfInval", "EvictClean", "EvictDirty", "Flush"];
const VT_I: usize = 0;
const VT_P: usize = 1;
const VT_V: usize = 2;
const VT_D: usize = 3;
const VC_FILL: usize = 0;
const VC_WB_STORE: usize = 1;
const VC_PROBE_INV: usize = 2;
const VC_ATOMIC_SELF_INVAL: usize = 3;
const VC_EVICT_CLEAN: usize = 4;
const VC_EVICT_DIRTY: usize = 5;
const VC_FLUSH: usize = 6;

/// Transition-matrix state index of a resident TCC line.
fn vt(l: &TccLine) -> usize {
    if l.is_dirty() {
        VT_D
    } else if l.fully_valid() {
        VT_V
    } else {
        VT_P
    }
}

/// Write policy of the TCC (the paper's `WB_L2` knob; TCPs stay
/// write-through, which is the configuration the paper evaluates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GpuWritePolicy {
    /// Stores write through to the directory immediately (default).
    #[default]
    WriteThrough,
    /// Stores allocate dirty words in the TCC; dirty lines are written
    /// back on eviction and on release fences.
    WriteBack,
}

/// Configuration of the GPU cluster (Table II / Table III defaults).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuConfig {
    /// Number of compute units.
    pub cus: usize,
    /// SIMD lanes per vector op (16 in Table III).
    pub lanes: usize,
    /// TCP (per-CU L1) size in bytes.
    pub tcp_bytes: u64,
    /// TCP associativity.
    pub tcp_ways: usize,
    /// TCC (shared L2) size in bytes.
    pub tcc_bytes: u64,
    /// TCC associativity.
    pub tcc_ways: usize,
    /// SQC (shared I-cache) size in bytes.
    pub sqc_bytes: u64,
    /// SQC associativity.
    pub sqc_ways: usize,
    /// TCP access latency in GPU cycles.
    pub tcp_cycles: u64,
    /// TCC access latency in GPU cycles.
    pub tcc_cycles: u64,
    /// SQC access latency in GPU cycles.
    pub sqc_cycles: u64,
    /// TCC write policy.
    pub tcc_policy: GpuWritePolicy,
    /// One SQC fetch per this many wavefront ops.
    pub ifetch_interval: u64,
    /// Number of distinct kernel code lines.
    pub code_lines: u64,
    /// TCC MSHR capacity.
    pub mshr_capacity: usize,
    /// Optional request retry under fault injection. `None` (the default)
    /// disables all retry bookkeeping and wake-ups. When enabled, the TCC
    /// retries fills, write-throughs and flush fences; SLC atomics are
    /// never retried because they are not idempotent at the directory (a
    /// retry whose original survived would apply the atomic twice) — a
    /// lost atomic is left to the watchdog to diagnose.
    pub retry: Option<RetryPolicy>,
}

impl Default for GpuConfig {
    /// Table II: 16 KB/16-way TCP (4 cy), 256 KB/16-way TCC (8 cy),
    /// 32 KB/8-way SQC (1 cy); Table III: 8 CUs, 16 lanes.
    fn default() -> Self {
        GpuConfig {
            cus: 8,
            lanes: 16,
            tcp_bytes: 16 * 1024,
            tcp_ways: 16,
            tcc_bytes: 256 * 1024,
            tcc_ways: 16,
            sqc_bytes: 32 * 1024,
            sqc_ways: 8,
            tcp_cycles: 4,
            tcc_cycles: 8,
            sqc_cycles: 1,
            tcc_policy: GpuWritePolicy::WriteThrough,
            ifetch_interval: 32,
            code_lines: 32,
            mshr_capacity: 512,
            retry: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BlockKind {
    /// Waiting for TCC line fills of `pending_lines`.
    Fill,
    /// Waiting for an SLC atomic response.
    SlcAtomic,
    /// Waiting for outstanding write-throughs (and the flush fence).
    Release,
}

#[derive(Debug)]
struct WfCtx {
    program: Box<dyn WavefrontProgram>,
    ready_at: Tick,
    blocked: Option<BlockKind>,
    last_value: Option<u64>,
    pending: Option<GpuOp>,
    pending_ifetch: bool,
    pending_lines: BTreeSet<LineAddr>,
    outstanding_wt: u64,
    flush_pending: bool,
    last_wt_line: Option<LineAddr>,
    done: bool,
    ops_since_ifetch: u64,
    next_code_line: u64,
    ops_retired: u64,
}

#[derive(Debug)]
struct Cu {
    tcp: CacheArray<TcpLine>,
    wfs: Vec<WfCtx>,
}

#[derive(Debug)]
struct TccTxn {
    /// `(cu, wf)` wavefronts waiting on this fill; `None` marks the SQC.
    waiters: Vec<Option<(usize, usize)>>,
}

/// Identifies a wavefront waiting for a write-through ack; `None` for
/// acks owed to TCC evictions (no wavefront waits on those).
type WtWaiter = Option<(usize, usize)>;

/// The GPU cluster: CUs with TCPs and a shared SQC in front of one TCC,
/// implementing the VIPER VI protocol of §II-C.
///
/// * TCPs are write-through, no-allocate-on-write, and are bulk-invalidated
///   by acquire fences (they are never probed by the directory).
/// * The TCC is write-through by default ([`GpuWritePolicy`]); in
///   write-back mode it allocates stores without fetching (per-word dirty
///   masks) and writes dirty lines back with `WriteThrough` messages, which
///   is exactly how the paper describes the `WB_L2` configuration.
/// * GLC (device-scope) atomics execute at the TCC; SLC (system-scope)
///   atomics bypass it (self-invalidating any cached copy) and execute at
///   the directory.
/// * On probes the TCC **never forwards data** but invalidates itself.
#[derive(Debug)]
pub struct GpuCluster {
    agent: AgentId,
    cfg: GpuConfig,
    cus: Vec<Cu>,
    tcc: CacheArray<TccLine>,
    tcc_mshr: Mshr<TccTxn>,
    wt_waiters: BTreeMap<LineAddr, VecDeque<WtWaiter>>,
    slc_waiters: BTreeMap<LineAddr, VecDeque<(usize, usize)>>,
    flush_waiters: BTreeMap<LineAddr, VecDeque<(usize, usize)>>,
    sqc: CacheArray<()>,
    retry: RetryTracker,
    /// TCC transition analytics; disabled (and free) unless the
    /// observability layer enables it. Excluded from `hash_state` and
    /// `stats` by construction.
    transitions: TransitionMatrix,
    counters: Counters,
    ids: GpuIds,
}

/// Interned counter ids for every key a GPU cluster ever bumps, so the
/// per-message and per-op paths never build a string key.
#[derive(Debug)]
struct GpuIds {
    tcp_hits: CounterId,
    tcp_misses: CounterId,
    lane0_refetches: CounterId,
    sqc_hits: CounterId,
    sqc_misses: CounterId,
    tcc_hits: CounterId,
    tcc_misses: CounterId,
    evict_clean: CounterId,
    evict_dirty: CounterId,
    flush_writebacks: CounterId,
    glc_atomics: CounterId,
    probes_received: CounterId,
    probe_invalidations: CounterId,
    wb_store_lines: CounterId,
    retries: CounterId,
    vec_loads: CounterId,
    vec_stores: CounterId,
    atomics_glc: CounterId,
    atomics_slc: CounterId,
    acquires: CounterId,
    releases: CounterId,
    compute_ops: CounterId,
    done: CounterId,
    stale_resps: CounterId,
    unexpected_msgs: CounterId,
    unexpected: ClassCounters,
    req_rd_blk: CounterId,
    req_wt: CounterId,
    req_atomic: CounterId,
    req_flush: CounterId,
}

impl GpuIds {
    /// Registers every GPU-cluster counter. The fixed keys are visible
    /// (exported at 0, so reports and time series list quiet counters
    /// instead of omitting them); diagnostic and per-class request keys
    /// stay hidden until first bumped.
    fn register(counters: &mut Counters) -> Self {
        GpuIds {
            tcp_hits: counters.register("tcp.hits"),
            tcp_misses: counters.register("tcp.misses"),
            lane0_refetches: counters.register("tcp.lane0_refetches"),
            sqc_hits: counters.register("sqc.hits"),
            sqc_misses: counters.register("sqc.misses"),
            tcc_hits: counters.register("tcc.hits"),
            tcc_misses: counters.register("tcc.misses"),
            evict_clean: counters.register("tcc.evict_clean"),
            evict_dirty: counters.register("tcc.evict_dirty"),
            flush_writebacks: counters.register("tcc.flush_writebacks"),
            glc_atomics: counters.register("tcc.glc_atomics"),
            probes_received: counters.register("tcc.probes_received"),
            probe_invalidations: counters.register("tcc.probe_invalidations"),
            wb_store_lines: counters.register("tcc.wb_store_lines"),
            retries: counters.register("tcc.retries"),
            vec_loads: counters.register("wf.vec_loads"),
            vec_stores: counters.register("wf.vec_stores"),
            atomics_glc: counters.register("wf.atomics_glc"),
            atomics_slc: counters.register("wf.atomics_slc"),
            acquires: counters.register("wf.acquires"),
            releases: counters.register("wf.releases"),
            compute_ops: counters.register("wf.compute_ops"),
            done: counters.register("wf.done"),
            stale_resps: counters.register_hidden("tcc.stale_resps"),
            unexpected_msgs: counters.register_hidden("tcc.unexpected_msgs"),
            unexpected: ClassCounters::register_hidden(counters, "tcc.unexpected"),
            req_rd_blk: counters.register_hidden("tcc.req.RdBlk"),
            req_wt: counters.register_hidden("tcc.req.WT"),
            req_atomic: counters.register_hidden("tcc.req.Atomic"),
            req_flush: counters.register_hidden("tcc.req.Flush"),
        }
    }
}

impl GpuCluster {
    /// Creates GPU cluster `index` (its TCC is `AgentId::Tcc(index)`).
    /// `programs[cu]` lists the wavefronts resident on each CU.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != cfg.cus`.
    #[must_use]
    pub fn new(
        index: usize,
        programs: Vec<Vec<Box<dyn WavefrontProgram>>>,
        cfg: GpuConfig,
    ) -> Self {
        assert_eq!(programs.len(), cfg.cus, "one wavefront list per CU");
        let mut counters = Counters::new();
        let ids = GpuIds::register(&mut counters);
        let cus = programs
            .into_iter()
            .map(|wfs| Cu {
                tcp: CacheArray::new(CacheGeometry::new(cfg.tcp_bytes, cfg.tcp_ways)),
                wfs: wfs
                    .into_iter()
                    .map(|program| WfCtx {
                        program,
                        ready_at: Tick::ZERO,
                        blocked: None,
                        last_value: None,
                        pending: None,
                        pending_ifetch: false,
                        pending_lines: BTreeSet::new(),
                        outstanding_wt: 0,
                        flush_pending: false,
                        last_wt_line: None,
                        done: false,
                        ops_since_ifetch: 0,
                        next_code_line: 0,
                        ops_retired: 0,
                    })
                    .collect(),
            })
            .collect();
        GpuCluster {
            agent: AgentId::Tcc(index),
            cfg,
            cus,
            tcc: CacheArray::new(CacheGeometry::new(cfg.tcc_bytes, cfg.tcc_ways)),
            tcc_mshr: Mshr::new(cfg.mshr_capacity),
            wt_waiters: BTreeMap::new(),
            slc_waiters: BTreeMap::new(),
            flush_waiters: BTreeMap::new(),
            sqc: CacheArray::new(CacheGeometry::new(cfg.sqc_bytes, cfg.sqc_ways)),
            retry: RetryTracker::maybe(cfg.retry),
            transitions: TransitionMatrix::new("viper-tcc", VIPER_STATES, VIPER_CAUSES),
            counters,
            ids,
        }
    }

    /// Switches on protocol analytics (TCC transition matrix).
    pub fn enable_analytics(&mut self) {
        self.transitions.enable();
    }

    /// The TCC's transition matrix (all-zero unless analytics enabled).
    #[must_use]
    pub fn transitions(&self) -> &TransitionMatrix {
        &self.transitions
    }

    /// Occupied TCC MSHR entries (an occupancy gauge for the epoch
    /// sampler).
    #[must_use]
    pub fn mshr_occupancy(&self) -> u64 {
        self.tcc_mshr.len() as u64
    }

    /// Wavefront store/flush completions still waited on at the TCC (an
    /// occupancy gauge for the epoch sampler).
    #[must_use]
    pub fn waiter_occupancy(&self) -> u64 {
        (self.wt_waiters.len() + self.slc_waiters.len() + self.flush_waiters.len()) as u64
    }

    /// The NoC endpoint of this cluster's TCC.
    #[must_use]
    pub fn agent(&self) -> AgentId {
        self.agent
    }

    /// Schedules the initial wake-up; call once before the run starts.
    pub fn start(&mut self, out: &mut Outbox) {
        out.wake_after(0);
    }

    /// Whether every wavefront retired and nothing is outstanding.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.cus.iter().all(|cu| cu.wfs.iter().all(|w| w.done))
            && self.tcc_mshr.is_empty()
            && self.wt_waiters.is_empty()
            && self.slc_waiters.is_empty()
            && self.flush_waiters.is_empty()
    }

    /// Cluster statistics (`tcp.hits`, `tcc.misses`, `wf.ops`, …).
    #[must_use]
    pub fn stats(&self) -> StatSet {
        self.counters.export()
    }

    /// Human-readable descriptions of everything still outstanding at
    /// this TCC (fills, write-throughs, SLC atomics, flush fences), for
    /// the watchdog's deadlock snapshot.
    pub fn pending_lines(&self) -> Vec<(LineAddr, String)> {
        let mut v: Vec<(LineAddr, String)> = self
            .tcc_mshr
            .iter()
            .map(|(la, txn)| (la, format!("fill, {} waiter(s)", txn.waiters.len())))
            .collect();
        v.extend(
            self.wt_waiters
                .iter()
                .map(|(&la, q)| (la, format!("{} write-through ack(s)", q.len()))),
        );
        v.extend(
            self.slc_waiters
                .iter()
                .map(|(&la, q)| (la, format!("{} SLC atomic response(s)", q.len()))),
        );
        v.extend(
            self.flush_waiters.iter().map(|(&la, q)| (la, format!("{} flush ack(s)", q.len()))),
        );
        v
    }

    /// Total ops retired across all wavefronts.
    #[must_use]
    pub fn ops_retired(&self) -> u64 {
        self.cus.iter().flat_map(|cu| cu.wfs.iter()).map(|w| w.ops_retired).sum()
    }

    /// Folds all protocol-relevant state into `h` for the system state
    /// fingerprint. Excludes timing (`ready_at`), retry deadlines and
    /// statistics — same scoping rules as `CorePair::hash_state`; cache
    /// arrays (TCPs, TCC, SQC — whose misses trigger fills) are hashed
    /// with placement and replacement bits.
    pub fn hash_state<H: std::hash::Hasher>(&self, h: &mut H) {
        use std::hash::Hash;
        for cu in &self.cus {
            for w in &cu.wfs {
                w.done.hash(h);
                w.blocked.hash(h);
                w.last_value.hash(h);
                w.pending.hash(h);
                w.pending_ifetch.hash(h);
                w.pending_lines.hash(h);
                w.outstanding_wt.hash(h);
                w.flush_pending.hash(h);
                w.last_wt_line.hash(h);
                w.ops_since_ifetch.hash(h);
                w.next_code_line.hash(h);
                w.ops_retired.hash(h);
            }
            cu.tcp.hash_state(h);
        }
        self.tcc.hash_state(h);
        self.sqc.hash_state(h);
        for (la, txn) in self.tcc_mshr.iter() {
            (la, &txn.waiters).hash(h);
        }
        self.wt_waiters.hash(h);
        self.slc_waiters.hash(h);
        self.flush_waiters.hash(h);
    }

    /// Handles a message delivered to the TCC.
    pub fn on_message(&mut self, now: Tick, msg: &Message, out: &mut Outbox) {
        debug_assert_eq!(msg.dst, self.agent);
        match msg.kind {
            MsgKind::Resp { data, .. } => self.on_fill(now, msg.line, data, out),
            MsgKind::WtAck => self.on_wt_ack(now, msg.line, out),
            MsgKind::AtomicResp { old } => self.on_atomic_resp(now, msg.line, old, out),
            MsgKind::FlushAck => self.on_flush_ack(now, msg.line, out),
            MsgKind::Probe { kind } => self.on_probe(msg.line, kind, out),
            ref other => {
                // Duplicated or mis-routed message under fault injection:
                // count and drop instead of aborting the run.
                self.counters.bump(self.ids.unexpected_msgs);
                self.counters.bump(self.ids.unexpected.id(other));
            }
        }
    }

    /// Advances every wavefront as far as the current tick allows and
    /// re-sends any timed-out requests (when a retry policy is configured).
    pub fn on_wake(&mut self, now: Tick, out: &mut Outbox) {
        self.service_retries(now, out);
        self.step_all(now, out);
    }

    /// Re-sends overdue requests and schedules the next retry wake-up.
    /// No-op (no wake-ups, no stats) when retry is disabled.
    fn service_retries(&mut self, now: Tick, out: &mut Outbox) {
        if !self.retry.enabled() {
            return;
        }
        for msg in self.retry.due(now) {
            self.counters.bump(self.ids.retries);
            out.send(msg);
        }
        if let Some(d) = self.retry.wake_needed() {
            out.wake_at(d);
        }
    }

    /// Starts retry tracking for a request just sent (no-op when retry is
    /// disabled) and schedules the wake-up that will check its deadline.
    fn track_request(&mut self, msg: Message, out: &mut Outbox) {
        if !self.retry.enabled() {
            return;
        }
        self.retry.track(out.now(), msg);
        if let Some(d) = self.retry.wake_needed() {
            out.wake_at(d);
        }
    }

    fn step_all(&mut self, now: Tick, out: &mut Outbox) {
        for cu in 0..self.cus.len() {
            for wf in 0..self.cus[cu].wfs.len() {
                self.step_wf(cu, wf, now, out);
            }
        }
        let next = self
            .cus
            .iter()
            .flat_map(|cu| cu.wfs.iter())
            .filter(|w| !w.done && w.blocked.is_none())
            .map(|w| w.ready_at)
            .filter(|&t| t > now)
            .min();
        if let Some(t) = next {
            out.wake_at(t);
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step_wf(&mut self, cu: usize, wf: usize, now: Tick, out: &mut Outbox) {
        loop {
            let w = &mut self.cus[cu].wfs[wf];
            if w.done || w.blocked.is_some() || w.ready_at > now {
                return;
            }
            if w.ops_since_ifetch >= self.cfg.ifetch_interval && w.pending.is_none() {
                w.ops_since_ifetch = 0;
                let la = LineAddr(
                    Addr(GPU_CODE_BASE).line().0 + (w.next_code_line % self.cfg.code_lines),
                );
                w.next_code_line += 1;
                self.access_ifetch(cu, wf, la, now, out);
                continue;
            }
            let w = &mut self.cus[cu].wfs[wf];
            let (op, first_attempt) = match w.pending.take() {
                Some(op) => (op, false),
                None => {
                    let lv = w.last_value.take();
                    (w.program.next_op(lv), true)
                }
            };
            let w = &mut self.cus[cu].wfs[wf];
            if first_attempt {
                w.ops_retired += 1;
                w.ops_since_ifetch += 1;
            }
            match op {
                GpuOp::Compute(cy) => {
                    self.counters.bump(self.ids.compute_ops);
                    if cy > 0 {
                        w.ready_at = now + gpu_cycles(cy);
                        return;
                    }
                }
                GpuOp::Done => {
                    w.done = true;
                    self.counters.bump(self.ids.done);
                    return;
                }
                GpuOp::VecLoad(addrs) => {
                    if first_attempt {
                        self.counters.bump(self.ids.vec_loads);
                    }
                    if self.access_vec_load(cu, wf, addrs, now, out) {
                        return;
                    }
                }
                GpuOp::VecStore(stores) => {
                    self.counters.bump(self.ids.vec_stores);
                    self.access_vec_store(cu, wf, &stores, now, out);
                    return;
                }
                GpuOp::AtomicGlc(a, k) => {
                    if first_attempt {
                        self.counters.bump(self.ids.atomics_glc);
                    }
                    if self.access_glc_atomic(cu, wf, a, k, now, out) {
                        return;
                    }
                }
                GpuOp::AtomicSlc(a, k) => {
                    self.counters.bump(self.ids.atomics_slc);
                    self.access_slc_atomic(cu, wf, a, k, out);
                    return;
                }
                GpuOp::Acquire => {
                    self.counters.bump(self.ids.acquires);
                    // VIPER acquire: bulk-invalidate this CU's TCP.
                    let tcp = &mut self.cus[cu].tcp;
                    let lines: Vec<LineAddr> = tcp.iter().map(|(la, _)| la).collect();
                    for la in lines {
                        tcp.invalidate(la);
                    }
                    self.cus[cu].wfs[wf].ready_at = now + gpu_cycles(self.cfg.tcp_cycles);
                    return;
                }
                GpuOp::Release => {
                    self.counters.bump(self.ids.releases);
                    if self.begin_release(cu, wf, now, out) {
                        return;
                    }
                }
            }
        }
    }

    /// Returns `true` if the wavefront is now waiting.
    fn access_vec_load(
        &mut self,
        cu: usize,
        wf: usize,
        addrs: Vec<Addr>,
        now: Tick,
        out: &mut Outbox,
    ) -> bool {
        assert!(!addrs.is_empty(), "VecLoad needs at least one lane");
        assert!(addrs.len() <= self.cfg.lanes, "more lanes than the SIMD width");
        let lines: BTreeSet<LineAddr> = addrs.iter().map(|a| a.line()).collect();
        let mut needs_tcc = false;
        let mut missing: Vec<LineAddr> = Vec::new();
        for &la in &lines {
            if self.cus[cu].tcp.contains(la) {
                self.counters.bump(self.ids.tcp_hits);
                self.cus[cu].tcp.touch(la);
            } else {
                self.counters.bump(self.ids.tcp_misses);
                needs_tcc = true;
                // Try the TCC.
                let usable = self.tcc.get(la).is_some_and(TccLine::fully_valid);
                if usable {
                    self.counters.bump(self.ids.tcc_hits);
                    self.tcc.touch(la);
                    let data = self.tcc.get(la).unwrap().data;
                    fill_tcp(&mut self.cus[cu].tcp, la, data);
                } else {
                    self.counters.bump(self.ids.tcc_misses);
                    missing.push(la);
                }
            }
        }
        if missing.is_empty() {
            let lat = if needs_tcc {
                gpu_cycles(self.cfg.tcp_cycles + self.cfg.tcc_cycles)
            } else {
                gpu_cycles(self.cfg.tcp_cycles)
            };
            // A scattered vector op can touch more lines than the TCP set
            // holds, so lane 0's line may already have been displaced by a
            // later lane's fill; fall back to the TCC, or refetch it.
            let lane0 = addrs[0];
            let l0 = lane0.line();
            let v = self.cus[cu].tcp.get(l0).map(|l| l.data.word_at(lane0)).or_else(|| {
                self.tcc
                    .get(l0)
                    .filter(|l| l.valid.contains(lane0.word_index()))
                    .map(|l| l.data.word_at(lane0))
            });
            let Some(v) = v else {
                self.counters.bump(self.ids.lane0_refetches);
                self.request_fill(l0, Some((cu, wf)), out);
                let w = &mut self.cus[cu].wfs[wf];
                w.pending_lines.insert(l0);
                w.pending = Some(GpuOp::VecLoad(addrs));
                w.blocked = Some(BlockKind::Fill);
                return true;
            };
            let w = &mut self.cus[cu].wfs[wf];
            w.last_value = Some(v);
            w.ready_at = now + lat;
            true
        } else {
            for la in missing {
                self.request_fill(la, Some((cu, wf)), out);
                self.cus[cu].wfs[wf].pending_lines.insert(la);
            }
            let w = &mut self.cus[cu].wfs[wf];
            w.pending = Some(GpuOp::VecLoad(addrs));
            w.blocked = Some(BlockKind::Fill);
            true
        }
    }

    fn request_fill(&mut self, la: LineAddr, waiter: Option<(usize, usize)>, out: &mut Outbox) {
        if let Some(txn) = self.tcc_mshr.get_mut(la) {
            txn.waiters.push(waiter);
            return;
        }
        self.tcc_mshr
            .alloc(la, TccTxn { waiters: vec![waiter] })
            .expect("TCC MSHR capacity exceeded");
        self.counters.bump(self.ids.req_rd_blk);
        let msg = Message::new(self.agent, AgentId::Directory, la, MsgKind::RdBlk);
        out.send(msg);
        self.track_request(msg, out);
    }

    fn access_vec_store(
        &mut self,
        cu: usize,
        wf: usize,
        stores: &[(Addr, u64)],
        now: Tick,
        out: &mut Outbox,
    ) {
        assert!(!stores.is_empty(), "VecStore needs at least one lane");
        assert!(stores.len() <= self.cfg.lanes, "more lanes than the SIMD width");
        // Group by line.
        let mut by_line: BTreeMap<LineAddr, Vec<(Addr, u64)>> = BTreeMap::new();
        for &(a, v) in stores {
            by_line.entry(a.line()).or_default().push((a, v));
        }
        for (la, writes) in by_line {
            // Keep our own TCP fresh (write-through, no-allocate).
            if let Some(l) = self.cus[cu].tcp.get_mut(la) {
                for &(a, v) in &writes {
                    l.data.set_word_at(a, v);
                }
            }
            match self.cfg.tcc_policy {
                GpuWritePolicy::WriteThrough => {
                    // Update the TCC copy if present, then write through.
                    let mut data = LineData::zeroed();
                    let mut mask = WordMask::empty();
                    if let Some(l) = self.tcc.get_mut(la) {
                        for &(a, v) in &writes {
                            l.data.set_word_at(a, v);
                            l.valid.set(a.word_index());
                        }
                    }
                    for &(a, v) in &writes {
                        data.set_word_at(a, v);
                        mask.set(a.word_index());
                    }
                    let retains = self.tcc.contains(la);
                    self.send_wt(la, data, mask, Some((cu, wf)), retains, out);
                }
                GpuWritePolicy::WriteBack => {
                    // Allocate-without-fetch; dirty words accumulate.
                    let from = self.tcc.get(la).map_or(VT_I, vt);
                    if !self.tcc.contains(la) {
                        self.tcc_insert(la, TccLine::empty(), out);
                    }
                    let l = self.tcc.get_mut(la).unwrap();
                    for &(a, v) in &writes {
                        l.write_word(a, v);
                    }
                    self.transitions.record(from, vt(l), VC_WB_STORE);
                    self.tcc.touch(la);
                    self.cus[cu].wfs[wf].last_wt_line = Some(la);
                    self.counters.bump(self.ids.wb_store_lines);
                }
            }
        }
        let w = &mut self.cus[cu].wfs[wf];
        w.last_value = None;
        w.ready_at = now + gpu_cycles(self.cfg.tcp_cycles);
    }

    fn send_wt(
        &mut self,
        la: LineAddr,
        data: LineData,
        mask: WordMask,
        waiter: WtWaiter,
        retains: bool,
        out: &mut Outbox,
    ) {
        self.counters.bump(self.ids.req_wt);
        if let Some((cu, wf)) = waiter {
            let w = &mut self.cus[cu].wfs[wf];
            w.outstanding_wt += 1;
            w.last_wt_line = Some(la);
        }
        self.wt_waiters.entry(la).or_default().push_back(waiter);
        let msg = Message::new(
            self.agent,
            AgentId::Directory,
            la,
            MsgKind::WriteThrough { data, mask, retains },
        );
        out.send(msg);
        self.track_request(msg, out);
    }

    /// Returns `true` if the wavefront is now waiting.
    fn access_glc_atomic(
        &mut self,
        cu: usize,
        wf: usize,
        a: Addr,
        k: hsc_mem::AtomicKind,
        now: Tick,
        out: &mut Outbox,
    ) -> bool {
        let la = a.line();
        let usable = self.tcc.get(la).is_some_and(|l| l.valid.contains(a.word_index()));
        if usable {
            let l = self.tcc.get_mut(la).unwrap();
            let old = l.data.apply_atomic(a, k);
            l.valid.set(a.word_index());
            self.tcc.touch(la);
            self.counters.bump(self.ids.glc_atomics);
            match self.cfg.tcc_policy {
                GpuWritePolicy::WriteThrough => {
                    let l = self.tcc.get(la).unwrap();
                    let mut data = LineData::zeroed();
                    data.set_word_at(a, l.data.word_at(a));
                    self.send_wt(
                        la,
                        data,
                        WordMask::single(a.word_index()),
                        Some((cu, wf)),
                        true,
                        out,
                    );
                }
                GpuWritePolicy::WriteBack => {
                    let l = self.tcc.get_mut(la).unwrap();
                    l.dirty.set(a.word_index());
                    self.cus[cu].wfs[wf].last_wt_line = Some(la);
                }
            }
            // Invalidate stale TCP copies in this CU so later loads re-read.
            self.cus[cu].tcp.invalidate(la);
            let w = &mut self.cus[cu].wfs[wf];
            w.last_value = Some(old);
            w.ready_at = now + gpu_cycles(self.cfg.tcc_cycles);
            true
        } else {
            self.request_fill(la, Some((cu, wf)), out);
            let w = &mut self.cus[cu].wfs[wf];
            w.pending_lines.insert(la);
            w.pending = Some(GpuOp::AtomicGlc(a, k));
            w.blocked = Some(BlockKind::Fill);
            true
        }
    }

    fn access_slc_atomic(
        &mut self,
        cu: usize,
        wf: usize,
        a: Addr,
        k: hsc_mem::AtomicKind,
        out: &mut Outbox,
    ) {
        let la = a.line();
        // SLC requests bypass the TCC (§II-C); drop any local copies so we
        // cannot read stale data afterwards.
        if let Some(from) = self.tcc.get(la).map(vt) {
            self.transitions.record(from, VT_I, VC_ATOMIC_SELF_INVAL);
        }
        self.tcc.invalidate(la);
        self.cus[cu].tcp.invalidate(la);
        self.counters.bump(self.ids.req_atomic);
        self.slc_waiters.entry(la).or_default().push_back((cu, wf));
        let w = &mut self.cus[cu].wfs[wf];
        w.pending = None;
        w.blocked = Some(BlockKind::SlcAtomic);
        out.send(Message::new(
            self.agent,
            AgentId::Directory,
            la,
            MsgKind::AtomicReq { word: a.word_index() as u8, op: k },
        ));
    }

    /// Returns `true` if the wavefront is now waiting.
    fn begin_release(&mut self, cu: usize, wf: usize, now: Tick, out: &mut Outbox) -> bool {
        if self.cfg.tcc_policy == GpuWritePolicy::WriteBack {
            // Flush every dirty TCC line via the WT-as-writeback path.
            let dirty: Vec<LineAddr> =
                self.tcc.iter().filter(|(_, l)| l.is_dirty()).map(|(la, _)| la).collect();
            for la in dirty {
                let l = self.tcc.get_mut(la).unwrap();
                let data = l.data;
                let mask = l.dirty;
                l.clean();
                let to = vt(l);
                self.transitions.record(VT_D, to, VC_FLUSH);
                let retains = self.tcc.contains(la);
                self.send_wt(la, data, mask, Some((cu, wf)), retains, out);
                self.counters.bump(self.ids.flush_writebacks);
            }
        }
        let fence_line = self.cus[cu].wfs[wf].last_wt_line;
        let w = &mut self.cus[cu].wfs[wf];
        if w.outstanding_wt == 0 && fence_line.is_none() {
            // Nothing to wait for.
            w.ready_at = now + gpu_cycles(self.cfg.tcp_cycles);
            return true;
        }
        if let Some(la) = fence_line {
            // Per-line flush fence (§II-A "Flush request … for supporting
            // Store Release"); FIFO ordering guarantees the ack arrives
            // after all our write-through acks for that line.
            w.flush_pending = true;
            self.flush_waiters.entry(la).or_default().push_back((cu, wf));
            self.counters.bump(self.ids.req_flush);
            let msg = Message::new(self.agent, AgentId::Directory, la, MsgKind::Flush);
            out.send(msg);
            self.track_request(msg, out);
        }
        let w = &mut self.cus[cu].wfs[wf];
        w.blocked = Some(BlockKind::Release);
        true
    }

    fn access_ifetch(&mut self, cu: usize, wf: usize, la: LineAddr, now: Tick, out: &mut Outbox) {
        if self.sqc.contains(la) {
            self.counters.bump(self.ids.sqc_hits);
            self.sqc.touch(la);
            self.cus[cu].wfs[wf].ready_at = now + gpu_cycles(self.cfg.sqc_cycles);
            return;
        }
        self.counters.bump(self.ids.sqc_misses);
        let usable = self.tcc.get(la).is_some_and(TccLine::fully_valid);
        if usable {
            self.counters.bump(self.ids.tcc_hits);
            self.tcc.touch(la);
            fill_tag(&mut self.sqc, la);
            self.cus[cu].wfs[wf].ready_at =
                now + gpu_cycles(self.cfg.sqc_cycles + self.cfg.tcc_cycles);
            return;
        }
        self.counters.bump(self.ids.tcc_misses);
        let w = &mut self.cus[cu].wfs[wf];
        w.pending_ifetch = true;
        w.pending_lines.insert(la);
        w.blocked = Some(BlockKind::Fill);
        self.request_fill(la, Some((cu, wf)), out);
    }

    fn tcc_insert(&mut self, la: LineAddr, line: TccLine, out: &mut Outbox) {
        if self.tcc.set_is_full(la) {
            let mshr = &self.tcc_mshr;
            let (vtag, _) = self
                .tcc
                .would_evict_scored(la, |tag, _| u32::from(mshr.contains(tag)))
                .expect("full set has an evictable way");
            let victim = self.tcc.invalidate(vtag).unwrap();
            if victim.is_dirty() {
                // WT doubles as the write-back request (§II-A).
                self.counters.bump(self.ids.evict_dirty);
                self.transitions.record(VT_D, VT_I, VC_EVICT_DIRTY);
                self.send_wt(vtag, victim.data, victim.dirty, None, false, out);
            } else {
                self.counters.bump(self.ids.evict_clean);
                self.transitions.record(vt(&victim), VT_I, VC_EVICT_CLEAN);
            }
        }
        self.tcc.insert(la, line);
        self.tcc.touch(la);
    }

    fn on_fill(&mut self, now: Tick, la: LineAddr, data: LineData, out: &mut Outbox) {
        self.retry.acked(la);
        let Some(txn) = self.tcc_mshr.remove(la) else {
            // Stale or duplicate fill (a retried RdBlk that raced its
            // original, or a duplicated Resp under fault injection). TCC
            // requests carry no Unblock, so there is nothing to answer;
            // drop it.
            self.counters.bump(self.ids.stale_resps);
            return;
        };
        if let Some(l) = self.tcc.get_mut(la) {
            let from = vt(l);
            l.merge_fill(data);
            let to = vt(l);
            self.transitions.record(from, to, VC_FILL);
            self.tcc.touch(la);
        } else {
            self.tcc_insert(la, TccLine::filled(data), out);
            self.transitions.record(VT_I, VT_V, VC_FILL);
        }
        let full = self.tcc.get(la).unwrap().data;
        for waiter in txn.waiters {
            match waiter {
                Some((cu, wf)) => {
                    fill_tcp(&mut self.cus[cu].tcp, la, full);
                    let w = &mut self.cus[cu].wfs[wf];
                    w.pending_lines.remove(&la);
                    if w.pending_lines.is_empty() {
                        w.blocked = None;
                        if w.pending_ifetch {
                            w.pending_ifetch = false;
                            fill_tag(&mut self.sqc, la);
                            w.ready_at =
                                now + gpu_cycles(self.cfg.sqc_cycles + self.cfg.tcc_cycles);
                        } else {
                            w.ready_at = now; // re-attempt the pending op
                        }
                    }
                }
                None => fill_tag(&mut self.sqc, la),
            }
        }
        // TCC requests carry no Unblock: the directory unblocks implicitly
        // (§II-D, footnote 3).
        self.step_all(now, out);
    }

    fn on_wt_ack(&mut self, now: Tick, la: LineAddr, out: &mut Outbox) {
        self.retry.acked(la);
        let Some(q) = self.wt_waiters.get_mut(&la) else {
            self.counters.bump(self.ids.stale_resps);
            return;
        };
        let waiter = q.pop_front().expect("WtAck queue empty");
        if q.is_empty() {
            self.wt_waiters.remove(&la);
        }
        if let Some((cu, wf)) = waiter {
            let w = &mut self.cus[cu].wfs[wf];
            w.outstanding_wt -= 1;
            if w.blocked == Some(BlockKind::Release) && w.outstanding_wt == 0 && !w.flush_pending {
                w.blocked = None;
                w.ready_at = now;
            }
        }
        self.step_all(now, out);
    }

    fn on_atomic_resp(&mut self, now: Tick, la: LineAddr, old: u64, out: &mut Outbox) {
        let Some(q) = self.slc_waiters.get_mut(&la) else {
            self.counters.bump(self.ids.stale_resps);
            return;
        };
        let (cu, wf) = q.pop_front().expect("SLC waiter queue empty");
        if q.is_empty() {
            self.slc_waiters.remove(&la);
        }
        let w = &mut self.cus[cu].wfs[wf];
        debug_assert_eq!(w.blocked, Some(BlockKind::SlcAtomic));
        w.blocked = None;
        w.last_value = Some(old);
        w.ready_at = now;
        self.step_all(now, out);
    }

    fn on_flush_ack(&mut self, now: Tick, la: LineAddr, out: &mut Outbox) {
        self.retry.acked(la);
        let Some(q) = self.flush_waiters.get_mut(&la) else {
            self.counters.bump(self.ids.stale_resps);
            return;
        };
        let (cu, wf) = q.pop_front().expect("flush waiter queue empty");
        if q.is_empty() {
            self.flush_waiters.remove(&la);
        }
        let w = &mut self.cus[cu].wfs[wf];
        w.flush_pending = false;
        w.last_wt_line = None;
        if w.blocked == Some(BlockKind::Release) && w.outstanding_wt == 0 {
            w.blocked = None;
            w.ready_at = now;
        }
        self.step_all(now, out);
    }

    fn on_probe(&mut self, la: LineAddr, kind: ProbeKind, out: &mut Outbox) {
        self.counters.bump(self.ids.probes_received);
        // §II-C: the TCC never forwards modified data on probes but does
        // invalidate itself.
        let had_copy = self.tcc.contains(la);
        if kind == ProbeKind::Invalidate && had_copy {
            let from = vt(self.tcc.get(la).unwrap());
            self.tcc.invalidate(la);
            self.transitions.record(from, VT_I, VC_PROBE_INV);
            self.counters.bump(self.ids.probe_invalidations);
        }
        out.send(Message::new(
            self.agent,
            AgentId::Directory,
            la,
            MsgKind::ProbeAck { dirty: None, had_copy, was_parked: false },
        ));
    }
}

fn fill_tcp(tcp: &mut CacheArray<TcpLine>, la: LineAddr, data: LineData) {
    if let Some(l) = tcp.get_mut(la) {
        l.data = data;
    } else {
        let _ = tcp.insert(la, TcpLine { data });
    }
    tcp.touch(la);
}

fn fill_tag(c: &mut CacheArray<()>, la: LineAddr) {
    if !c.contains(la) {
        let _ = c.insert(la, ());
    }
    c.touch(la);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsc_mem::{AtomicKind, MainMemory};
    use hsc_noc::{Action, Grant};
    use hsc_sim::WheelQueue;

    #[derive(Debug)]
    struct Script {
        ops: Vec<GpuOp>,
        idx: usize,
        values: Vec<Option<u64>>,
    }

    impl Script {
        fn new(ops: Vec<GpuOp>) -> Self {
            Script { ops, idx: 0, values: Vec::new() }
        }
    }

    impl WavefrontProgram for Script {
        fn next_op(&mut self, last: Option<u64>) -> GpuOp {
            self.values.push(last);
            let op = self.ops.get(self.idx).cloned().unwrap_or(GpuOp::Done);
            self.idx += 1;
            op
        }
    }

    fn small_cfg() -> GpuConfig {
        GpuConfig {
            cus: 2,
            tcp_bytes: 1024,
            tcc_bytes: 4096,
            sqc_bytes: 1024,
            ifetch_interval: 1000,
            ..GpuConfig::default()
        }
    }

    /// Runs the cluster against a trivially coherent fake directory.
    fn run_gpu(gpu: &mut GpuCluster, mem: &mut MainMemory, limit: u64) {
        #[derive(Debug)]
        enum Ev {
            Wake,
            Msg(Message),
        }
        let mut q: WheelQueue<Ev> = WheelQueue::new();
        q.schedule(Tick(0), Ev::Wake);
        let hop = 10u64;
        let mut steps = 0u64;
        while let Some((now, ev)) = q.pop() {
            steps += 1;
            assert!(steps < limit, "fake-directory GPU run exceeded {limit} events");
            let mut out = Outbox::new(now);
            match ev {
                Ev::Wake => gpu.on_wake(now, &mut out),
                Ev::Msg(m) if m.dst == gpu.agent() => gpu.on_message(now, &m, &mut out),
                Ev::Msg(m) => {
                    let resp = match m.kind {
                        MsgKind::RdBlk => Some(MsgKind::Resp {
                            data: mem.read_line(m.line),
                            grant: Grant::Shared,
                        }),
                        MsgKind::WriteThrough { data, mask, .. } => {
                            let mut line = mem.read_line(m.line);
                            mask.apply(&mut line, &data);
                            mem.write_line(m.line, line);
                            Some(MsgKind::WtAck)
                        }
                        MsgKind::AtomicReq { word, op } => {
                            let mut line = mem.read_line(m.line);
                            let old = line.apply_atomic(m.line.word_addr(word as usize), op);
                            mem.write_line(m.line, line);
                            Some(MsgKind::AtomicResp { old })
                        }
                        MsgKind::Flush => Some(MsgKind::FlushAck),
                        ref k => panic!("fake directory got {}", k.class_name()),
                    };
                    if let Some(kind) = resp {
                        q.schedule(
                            now + hop,
                            Ev::Msg(Message::new(AgentId::Directory, m.src, m.line, kind)),
                        );
                    }
                }
            }
            for act in out.into_actions() {
                match act {
                    Action::Send(m) => q.schedule(now + hop, Ev::Msg(m)),
                    Action::SendLater(t, m) => q.schedule(t + 5, Ev::Msg(m)),
                    Action::Wake(t) => q.schedule(t, Ev::Wake),
                }
            }
        }
    }

    fn one_wf(ops: Vec<GpuOp>, cfg: GpuConfig) -> GpuCluster {
        let mut programs: Vec<Vec<Box<dyn WavefrontProgram>>> =
            (0..cfg.cus).map(|_| Vec::new()).collect();
        programs[0].push(Box::new(Script::new(ops)));
        GpuCluster::new(0, programs, cfg)
    }

    #[test]
    fn vec_store_writes_through_to_memory() {
        let stores: Vec<(Addr, u64)> = (0..16).map(|i| (Addr(0x1000 + i * 8), i)).collect();
        let mut gpu =
            one_wf(vec![GpuOp::VecStore(stores), GpuOp::Release, GpuOp::Done], small_cfg());
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.is_done());
        for i in 0..16u64 {
            assert_eq!(mem.read_word(Addr(0x1000 + i * 8)), i);
        }
        assert!(gpu.stats().get("tcc.req.WT") >= 2, "two lines written through");
        assert_eq!(gpu.stats().get("tcc.req.Flush"), 1, "release sends the fence");
    }

    #[test]
    fn vec_load_misses_then_hits_tcp() {
        let addrs: Vec<Addr> = (0..16).map(|i| Addr(0x2000 + i * 8)).collect();
        let mut gpu = one_wf(
            vec![GpuOp::VecLoad(addrs.clone()), GpuOp::VecLoad(addrs), GpuOp::Done],
            small_cfg(),
        );
        let mut mem = MainMemory::new();
        mem.write_word(Addr(0x2000), 99);
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.is_done());
        assert!(gpu.stats().get("tcc.misses") >= 1);
        assert!(gpu.stats().get("tcp.hits") >= 2, "second load hits the TCP");
        assert_eq!(gpu.stats().get("tcc.req.RdBlk"), 2, "one fill per line");
    }

    #[test]
    fn slc_atomic_executes_at_directory_and_returns_old() {
        let a = Addr(0x3000);
        let mut gpu = one_wf(
            vec![
                GpuOp::AtomicSlc(a, AtomicKind::FetchAdd(5)),
                GpuOp::AtomicSlc(a, AtomicKind::FetchAdd(5)),
                GpuOp::Done,
            ],
            small_cfg(),
        );
        let mut mem = MainMemory::new();
        mem.write_word(a, 100);
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.is_done());
        assert_eq!(mem.read_word(a), 110);
        // The program observed 100 then 105.
        let wf = &gpu.cus[0].wfs[0];
        let seen: Vec<Option<u64>> = {
            // Extract from the script through Debug is overkill; re-check
            // via stats instead.
            let _ = wf;
            vec![]
        };
        let _ = seen;
        assert_eq!(gpu.stats().get("tcc.req.Atomic"), 2);
    }

    #[test]
    fn glc_atomic_executes_at_tcc_and_writes_through() {
        let a = Addr(0x4000);
        let mut gpu = one_wf(
            vec![
                GpuOp::AtomicGlc(a, AtomicKind::FetchAdd(1)),
                GpuOp::AtomicGlc(a, AtomicKind::FetchAdd(1)),
                GpuOp::Release,
                GpuOp::Done,
            ],
            small_cfg(),
        );
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.is_done());
        assert_eq!(mem.read_word(a), 2, "GLC atomics reach memory through WTs");
        assert_eq!(gpu.stats().get("tcc.glc_atomics"), 2);
        assert_eq!(gpu.stats().get("tcc.req.RdBlk"), 1, "one fill, second hits TCC");
    }

    #[test]
    fn write_back_tcc_defers_until_release() {
        let mut cfg = small_cfg();
        cfg.tcc_policy = GpuWritePolicy::WriteBack;
        let stores: Vec<(Addr, u64)> = vec![(Addr(0x5000), 7)];
        let mut gpu = one_wf(vec![GpuOp::VecStore(stores), GpuOp::Release, GpuOp::Done], cfg);
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.is_done());
        assert_eq!(mem.read_word(Addr(0x5000)), 7);
        assert_eq!(
            gpu.stats().get("tcc.flush_writebacks"),
            1,
            "the dirty line flushed at the release fence"
        );
    }

    #[test]
    fn acquire_invalidates_the_tcp() {
        let addrs = vec![Addr(0x6000)];
        let mut gpu = one_wf(
            vec![GpuOp::VecLoad(addrs.clone()), GpuOp::Acquire, GpuOp::VecLoad(addrs), GpuOp::Done],
            small_cfg(),
        );
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.is_done());
        // Second load misses the TCP again (hits TCC).
        assert_eq!(gpu.stats().get("tcp.misses"), 2);
        assert!(gpu.stats().get("tcc.hits") >= 1);
    }

    #[test]
    fn probe_invalidates_tcc_without_forwarding_data() {
        let mut gpu = one_wf(vec![GpuOp::VecLoad(vec![Addr(0x7000)]), GpuOp::Done], small_cfg());
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.tcc.contains(Addr(0x7000).line()));
        let mut out = Outbox::new(Tick(1_000_000));
        gpu.on_probe(Addr(0x7000).line(), ProbeKind::Invalidate, &mut out);
        match out.actions()[0] {
            Action::Send(ref m) => {
                assert!(matches!(m.kind, MsgKind::ProbeAck { dirty: None, had_copy: true, .. }));
            }
            ref other => panic!("expected send, got {other:?}"),
        }
        assert!(!gpu.tcc.contains(Addr(0x7000).line()), "TCC self-invalidated");
    }

    #[test]
    fn transition_matrix_tracks_viper_writeback_lifecycle() {
        let mut cfg = small_cfg();
        cfg.tcc_policy = GpuWritePolicy::WriteBack;
        let stores = vec![(Addr(0x5000), 7)];
        let mut gpu = one_wf(vec![GpuOp::VecStore(stores), GpuOp::Release, GpuOp::Done], cfg);
        gpu.enable_analytics();
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        let m = gpu.transitions();
        assert_eq!(m.get(VT_I, VT_D, VC_WB_STORE), 1, "allocate-without-fetch dirties the line");
        assert_eq!(m.get(VT_D, VT_P, VC_FLUSH), 1, "release flush cleans the partial line");
        assert_eq!(m.total(), 2);
    }

    #[test]
    fn transition_matrix_stays_silent_when_disabled() {
        let mut gpu = one_wf(vec![GpuOp::VecLoad(vec![Addr(0x7000)]), GpuOp::Done], small_cfg());
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(!gpu.transitions().is_enabled());
        assert_eq!(gpu.transitions().total(), 0);
    }

    #[test]
    fn ifetch_goes_through_sqc() {
        let mut cfg = small_cfg();
        cfg.ifetch_interval = 2;
        cfg.code_lines = 2; // wrap quickly so fetches revisit lines
        let ops: Vec<GpuOp> = (0..16).map(|_| GpuOp::Compute(1)).chain([GpuOp::Done]).collect();
        let mut gpu = one_wf(ops, cfg);
        let mut mem = MainMemory::new();
        run_gpu(&mut gpu, &mut mem, 100_000);
        assert!(gpu.is_done());
        assert!(gpu.stats().get("sqc.misses") >= 1);
        assert!(gpu.stats().get("sqc.hits") >= 1);
    }
}
