//! CPU, GPU and DMA cluster models for the HSC reproduction.
//!
//! This crate models the three request-generating subsystems of the
//! paper's Fig. 1:
//!
//! * [`CorePair`] — two in-order x86-class cores behind private L1Ds, a
//!   shared L1I and a shared, inclusive, **MOESI** L2 (the agent the
//!   directory probes). Exclusive lines upgrade to Modified silently;
//!   clean evictions are noisy (`VicClean`), exactly as §II-B/§II-D
//!   describe.
//! * [`GpuCluster`] — compute units with 16-lane SIMDs, per-CU TCP (L1)
//!   and SQC (I-cache), and a shared TCC (L2) implementing the **VIPER**
//!   VI protocol: write-through by default, optional write-back, GLC
//!   (device-scope) atomics at the TCC, SLC (system-scope) atomics
//!   bypassing it, self-invalidation on probes without data forwarding.
//! * [`DmaEngine`] — issues `DMARd`/`DMAWr` line streams and never caches.
//!
//! Workloads drive the clusters through the [`CoreProgram`] /
//! [`WavefrontProgram`] traits: tiny state machines that may branch on
//! loaded values, which is how spin-loops, work-queues and CAS retry loops
//! are expressed (see `hsc-workloads`).
//!
//! Timing uses an exact common clock: 1 tick = 1/38.5 GHz ≈ 26 ps, so a
//! 3.5 GHz CPU cycle is 11 ticks and a 1.1 GHz GPU cycle is 35 ticks
//! (Table III frequencies with zero rounding error).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clocks;
mod corepair;
mod dma;
mod gpu;
mod moesi;
pub mod mutation;
mod ops;
mod viper;

pub use clocks::{cpu_cycles, gpu_cycles, TICKS_PER_CPU_CYCLE, TICKS_PER_GPU_CYCLE};
pub use corepair::{CorePair, CpuConfig};
pub use dma::{DmaCommand, DmaEngine};
pub use gpu::{GpuCluster, GpuConfig, GpuWritePolicy};
pub use moesi::MoesiState;
pub use ops::{CoreProgram, CpuOp, GpuOp, WavefrontProgram};
pub use viper::{TccLine, TcpLine, ViState};
