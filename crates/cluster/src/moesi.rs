use std::fmt;

use hsc_noc::Grant;

/// The five stable states of the CorePair L2's MOESI protocol (§II-B).
///
/// Invalid is represented by absence from the cache array, so this enum
/// only carries the four valid states plus the rules that matter to the
/// system-level directory:
///
/// * `Exclusive` may silently become `Modified` (no directory message),
/// * `Modified`/`Owned` forward dirty data on probes,
/// * `Shared` lines may hold dirty data (dirty sharing under an `Owned`
///   line elsewhere) but never forward it — the owner reconciles,
/// * evictions send `VicDirty` from M/O and `VicClean` from E/S.
///
/// # Examples
///
/// ```
/// use hsc_cluster::MoesiState;
///
/// assert!(MoesiState::Modified.forwards_dirty());
/// assert!(!MoesiState::Shared.forwards_dirty());
/// assert!(MoesiState::Exclusive.evicts_clean());
/// assert!(MoesiState::Owned.can_read());
/// assert!(!MoesiState::Owned.can_write());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoesiState {
    /// Only copy, dirty.
    Modified,
    /// Dirty, possibly shared; responsible for write-back.
    Owned,
    /// Only copy, clean; may silently upgrade to Modified.
    Exclusive,
    /// Possibly one of many copies; never forwards data.
    Shared,
}

impl MoesiState {
    /// Whether a load hits in this state.
    #[must_use]
    pub fn can_read(self) -> bool {
        true
    }

    /// Whether a store hits without a directory upgrade. `Exclusive`
    /// counts: the E→M transition is silent.
    #[must_use]
    pub fn can_write(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Exclusive)
    }

    /// Whether this state forwards dirty data when probed.
    #[must_use]
    pub fn forwards_dirty(self) -> bool {
        matches!(self, MoesiState::Modified | MoesiState::Owned)
    }

    /// Whether eviction sends `VicClean` (vs `VicDirty`).
    #[must_use]
    pub fn evicts_clean(self) -> bool {
        matches!(self, MoesiState::Exclusive | MoesiState::Shared)
    }

    /// The state after a downgrading probe.
    #[must_use]
    pub fn after_downgrade(self) -> MoesiState {
        match self {
            MoesiState::Modified | MoesiState::Owned => MoesiState::Owned,
            MoesiState::Exclusive | MoesiState::Shared => MoesiState::Shared,
        }
    }

    /// The state granted by a directory response.
    #[must_use]
    pub fn from_grant(grant: Grant) -> MoesiState {
        match grant {
            Grant::Shared => MoesiState::Shared,
            Grant::Exclusive => MoesiState::Exclusive,
            Grant::Modified => MoesiState::Modified,
        }
    }
}

impl fmt::Display for MoesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MoesiState::Modified => "M",
            MoesiState::Owned => "O",
            MoesiState::Exclusive => "E",
            MoesiState::Shared => "S",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_permission_matches_moesi() {
        assert!(MoesiState::Modified.can_write());
        assert!(MoesiState::Exclusive.can_write(), "silent E→M");
        assert!(!MoesiState::Owned.can_write());
        assert!(!MoesiState::Shared.can_write());
    }

    #[test]
    fn dirty_forwarding_is_m_and_o_only() {
        assert!(MoesiState::Modified.forwards_dirty());
        assert!(MoesiState::Owned.forwards_dirty());
        assert!(!MoesiState::Exclusive.forwards_dirty());
        assert!(!MoesiState::Shared.forwards_dirty());
    }

    #[test]
    fn eviction_noise_matches_paper() {
        // §II-D: "the possibility of clean victims implies evictions from
        // L2s are noisy" — E and S both notify the directory.
        assert!(MoesiState::Exclusive.evicts_clean());
        assert!(MoesiState::Shared.evicts_clean());
        assert!(!MoesiState::Modified.evicts_clean());
        assert!(!MoesiState::Owned.evicts_clean());
    }

    #[test]
    fn downgrade_keeps_ownership_with_the_dirty_cache() {
        assert_eq!(MoesiState::Modified.after_downgrade(), MoesiState::Owned);
        assert_eq!(MoesiState::Owned.after_downgrade(), MoesiState::Owned);
        assert_eq!(MoesiState::Exclusive.after_downgrade(), MoesiState::Shared);
        assert_eq!(MoesiState::Shared.after_downgrade(), MoesiState::Shared);
    }

    #[test]
    fn grants_map_onto_states() {
        assert_eq!(MoesiState::from_grant(Grant::Shared), MoesiState::Shared);
        assert_eq!(MoesiState::from_grant(Grant::Exclusive), MoesiState::Exclusive);
        assert_eq!(MoesiState::from_grant(Grant::Modified), MoesiState::Modified);
    }

    #[test]
    fn display_is_single_letter() {
        assert_eq!(MoesiState::Owned.to_string(), "O");
    }
}
