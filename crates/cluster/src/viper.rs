use hsc_mem::{LineData, WORDS_PER_LINE};
use hsc_noc::WordMask;

/// Marker for the VIPER protocol's two stable states. Invalid is
/// represented by absence from the cache array, so `Valid` is the only
/// inhabited variant; it exists to make protocol tables and traces read
/// like the paper (§II-C: "simple VI-like protocols").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ViState {
    /// The line is present and readable.
    #[default]
    Valid,
}

/// One line in a TCP (the per-CU GPU L1).
///
/// TCPs are write-through and never forward data on probes, so the only
/// payload is the (possibly stale until the next acquire) data copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpLine {
    /// Cached copy of the line.
    pub data: LineData,
}

/// One line in the TCC (the GPU L2).
///
/// In write-through mode lines are always clean and fully valid. In
/// write-back mode the TCC allocates stores without fetching, so a line
/// tracks which words are `valid` (fetched or written) and which are
/// `dirty` (owed to the system via a `WriteThrough` on eviction or flush).
///
/// # Examples
///
/// ```
/// use hsc_cluster::TccLine;
/// use hsc_mem::Addr;
///
/// let mut l = TccLine::empty();
/// l.write_word(Addr(8), 5);
/// assert!(l.is_dirty());
/// assert!(!l.fully_valid());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TccLine {
    /// Line contents (only `valid` words are meaningful).
    pub data: LineData,
    /// Words present in the line.
    pub valid: WordMask,
    /// Words owed to the system (write-back mode only).
    pub dirty: WordMask,
}

impl TccLine {
    /// A line with no valid words (write-allocate-without-fetch start).
    #[must_use]
    pub fn empty() -> Self {
        TccLine { data: LineData::zeroed(), valid: WordMask::empty(), dirty: WordMask::empty() }
    }

    /// A clean, fully valid line (a fill from the directory).
    #[must_use]
    pub fn filled(data: LineData) -> Self {
        TccLine { data, valid: WordMask::full(), dirty: WordMask::empty() }
    }

    /// Whether any word is owed to the system.
    #[must_use]
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Whether every word is present.
    #[must_use]
    pub fn fully_valid(&self) -> bool {
        self.valid.count() as usize == WORDS_PER_LINE
    }

    /// Writes one word, marking it valid and dirty.
    pub fn write_word(&mut self, a: hsc_mem::Addr, v: u64) {
        self.data.set_word_at(a, v);
        self.valid.set(a.word_index());
        self.dirty.set(a.word_index());
    }

    /// Merges a full fetched line under the current dirty words: fetched
    /// data fills every word that is not locally dirty.
    pub fn merge_fill(&mut self, fetched: LineData) {
        for i in 0..WORDS_PER_LINE {
            if !self.dirty.contains(i) {
                self.data.set_word(i, fetched.word(i));
            }
        }
        self.valid = WordMask::full();
    }

    /// Clears the dirty mask (after a flush/write-back), leaving the line
    /// valid and clean.
    pub fn clean(&mut self) {
        self.dirty = WordMask::empty();
    }
}

impl Default for TccLine {
    fn default() -> Self {
        TccLine::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsc_mem::Addr;

    #[test]
    fn empty_line_is_clean_and_invalid() {
        let l = TccLine::empty();
        assert!(!l.is_dirty());
        assert!(!l.fully_valid());
    }

    #[test]
    fn filled_line_is_fully_valid_and_clean() {
        let mut d = LineData::zeroed();
        d.set_word(2, 9);
        let l = TccLine::filled(d);
        assert!(l.fully_valid());
        assert!(!l.is_dirty());
        assert_eq!(l.data.word(2), 9);
    }

    #[test]
    fn write_allocate_without_fetch_tracks_partial_validity() {
        let mut l = TccLine::empty();
        l.write_word(Addr(0), 1);
        l.write_word(Addr(24), 4);
        assert!(l.is_dirty());
        assert_eq!(l.valid.count(), 2);
        assert_eq!(l.dirty.count(), 2);
        assert!(!l.fully_valid());
    }

    #[test]
    fn merge_fill_preserves_dirty_words() {
        let mut l = TccLine::empty();
        l.write_word(Addr(8), 42); // word 1 dirty
        let fetched = LineData::from_words([10, 11, 12, 13, 14, 15, 16, 17]);
        l.merge_fill(fetched);
        assert!(l.fully_valid());
        assert_eq!(l.data.word(0), 10, "fetched word fills clean slot");
        assert_eq!(l.data.word(1), 42, "dirty word survives the fill");
        assert!(l.is_dirty(), "merge does not clean the line");
    }

    #[test]
    fn clean_clears_only_dirtiness() {
        let mut l = TccLine::empty();
        l.write_word(Addr(0), 7);
        l.merge_fill(LineData::zeroed());
        l.clean();
        assert!(!l.is_dirty());
        assert!(l.fully_valid());
        assert_eq!(l.data.word(0), 7);
    }

    #[test]
    fn vi_state_is_valid_only() {
        assert_eq!(ViState::default(), ViState::Valid);
    }
}
