use std::fmt;

use hsc_mem::{Addr, AtomicKind};

/// One operation of a CPU thread, produced on demand by a [`CoreProgram`].
///
/// Cores are in-order and blocking: an op completes before the next one is
/// requested, and the previous load/atomic result is handed back to the
/// program, which is how data-dependent control flow (spin loops, CAS retry
/// loops, work-stealing) is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuOp {
    /// Busy computation for the given number of *CPU* cycles.
    Compute(u64),
    /// 64-bit load; the value is passed to the next `next_op` call.
    Load(Addr),
    /// 64-bit store of an immediate value.
    Store(Addr, u64),
    /// Read-modify-write executed with Modified permission in the L2 (the
    /// line is owned for the duration, like an x86 `lock` prefix). The old
    /// value is passed to the next `next_op` call.
    Atomic(Addr, AtomicKind),
    /// The thread has finished; the core idles forever.
    Done,
}

impl fmt::Display for CpuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuOp::Compute(c) => write!(f, "compute({c})"),
            CpuOp::Load(a) => write!(f, "load {a}"),
            CpuOp::Store(a, v) => write!(f, "store {a}={v}"),
            CpuOp::Atomic(a, op) => write!(f, "atomic {a} {op:?}"),
            CpuOp::Done => write!(f, "done"),
        }
    }
}

/// A CPU thread: a deterministic state machine emitting [`CpuOp`]s.
///
/// `last_value` carries the result of the immediately preceding
/// `Load`/`Atomic` (or `None` after other ops), so programs can branch on
/// memory contents.
///
/// # Examples
///
/// ```
/// use hsc_cluster::{CoreProgram, CpuOp};
/// use hsc_mem::Addr;
///
/// /// Spins until the flag at `addr` becomes non-zero.
/// #[derive(Debug)]
/// struct SpinOnFlag {
///     addr: Addr,
///     polled: bool,
/// }
///
/// impl CoreProgram for SpinOnFlag {
///     fn next_op(&mut self, last_value: Option<u64>) -> CpuOp {
///         if self.polled && last_value == Some(1) {
///             return CpuOp::Done;
///         }
///         self.polled = true;
///         CpuOp::Load(self.addr)
///     }
/// }
/// ```
pub trait CoreProgram: fmt::Debug + Send {
    /// The next operation; called when the previous one completed.
    fn next_op(&mut self, last_value: Option<u64>) -> CpuOp;

    /// Optional human-readable label for traces.
    fn label(&self) -> &str {
        "cpu-thread"
    }
}

/// One operation of a GPU wavefront, produced by a [`WavefrontProgram`].
///
/// Vector memory ops carry per-lane word addresses that the TCP coalesces
/// into line requests. Scope-annotated atomics follow the paper: GLC
/// (device scope) executes at the TCC, SLC (system scope) bypasses the TCC
/// and executes at the directory.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GpuOp {
    /// Busy computation for the given number of *GPU* cycles.
    Compute(u64),
    /// Per-lane 64-bit loads, coalesced per line by the TCP. The lane-0
    /// value is passed to the next `next_op` call.
    VecLoad(Vec<Addr>),
    /// Per-lane 64-bit stores.
    VecStore(Vec<(Addr, u64)>),
    /// Device-scope atomic, executed at the TCC. Old value handed back.
    AtomicGlc(Addr, AtomicKind),
    /// System-scope atomic, executed at the directory (bypasses the TCC).
    /// Old value handed back.
    AtomicSlc(Addr, AtomicKind),
    /// Acquire fence: bulk-invalidates this CU's TCP so later loads see
    /// system-visible data.
    Acquire,
    /// Release fence: blocks until all of this wavefront's prior stores
    /// are system-visible (write-through acks collected; in write-back
    /// mode the TCC's dirty lines are flushed first).
    Release,
    /// The wavefront has finished.
    Done,
}

impl fmt::Display for GpuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuOp::Compute(c) => write!(f, "compute({c})"),
            GpuOp::VecLoad(v) => write!(f, "vload×{}", v.len()),
            GpuOp::VecStore(v) => write!(f, "vstore×{}", v.len()),
            GpuOp::AtomicGlc(a, op) => write!(f, "atomic.glc {a} {op:?}"),
            GpuOp::AtomicSlc(a, op) => write!(f, "atomic.slc {a} {op:?}"),
            GpuOp::Acquire => write!(f, "acquire"),
            GpuOp::Release => write!(f, "release"),
            GpuOp::Done => write!(f, "done"),
        }
    }
}

/// A GPU wavefront: a deterministic state machine emitting [`GpuOp`]s.
///
/// `last_value` carries the lane-0 result of the preceding
/// `VecLoad`/atomic, letting kernels implement flag polling and work-queue
/// dequeues with SLC atomics, as the CHAI benchmarks do.
pub trait WavefrontProgram: fmt::Debug + Send {
    /// The next operation; called when the previous one completed.
    fn next_op(&mut self, last_value: Option<u64>) -> GpuOp;

    /// Optional human-readable label for traces.
    fn label(&self) -> &str {
        "wavefront"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Counter(u32);

    impl CoreProgram for Counter {
        fn next_op(&mut self, _last: Option<u64>) -> CpuOp {
            if self.0 == 0 {
                CpuOp::Done
            } else {
                self.0 -= 1;
                CpuOp::Compute(1)
            }
        }
    }

    #[test]
    fn programs_are_plain_state_machines() {
        let mut p = Counter(2);
        assert_eq!(p.next_op(None), CpuOp::Compute(1));
        assert_eq!(p.next_op(None), CpuOp::Compute(1));
        assert_eq!(p.next_op(None), CpuOp::Done);
        assert_eq!(p.next_op(None), CpuOp::Done, "Done is sticky-safe");
        assert_eq!(p.label(), "cpu-thread");
    }

    #[test]
    fn ops_display_compactly() {
        assert_eq!(CpuOp::Load(Addr(8)).to_string(), "load 0x8");
        assert_eq!(GpuOp::VecLoad(vec![Addr(0); 16]).to_string(), "vload×16");
        assert_eq!(GpuOp::Acquire.to_string(), "acquire");
    }
}
