//! Exact clock conversion between the CPU (3.5 GHz), GPU (1.1 GHz) and the
//! simulator's global tick.
//!
//! The least common multiple of the two Table III frequencies is 38.5 GHz,
//! so with 1 tick = 1/38.5 GHz both domains convert exactly:
//! `3.5 GHz → 11 ticks/cycle`, `1.1 GHz → 35 ticks/cycle`.

/// Ticks per CPU clock cycle (3.5 GHz).
pub const TICKS_PER_CPU_CYCLE: u64 = 11;

/// Ticks per GPU clock cycle (1.1 GHz). Directory/LLC latencies in the
/// paper's Table II are interpreted in this system-side clock.
pub const TICKS_PER_GPU_CYCLE: u64 = 35;

/// Converts CPU cycles to ticks.
///
/// # Examples
///
/// ```
/// assert_eq!(hsc_cluster::cpu_cycles(2), 22);
/// ```
#[must_use]
pub fn cpu_cycles(n: u64) -> u64 {
    n * TICKS_PER_CPU_CYCLE
}

/// Converts GPU cycles to ticks.
///
/// # Examples
///
/// ```
/// assert_eq!(hsc_cluster::gpu_cycles(2), 70);
/// ```
#[must_use]
pub fn gpu_cycles(n: u64) -> u64 {
    n * TICKS_PER_GPU_CYCLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_share_the_tick_exactly() {
        // 3.5 GHz * 11 = 38.5; 1.1 GHz * 35 = 38.5.
        assert_eq!(35 * 11, 385);
        assert_eq!(cpu_cycles(35), gpu_cycles(11));
    }

    #[test]
    fn conversions_scale_linearly() {
        assert_eq!(cpu_cycles(0), 0);
        assert_eq!(cpu_cycles(100), 1100);
        assert_eq!(gpu_cycles(8), 280, "TCC 8-cycle access in ticks");
    }
}
