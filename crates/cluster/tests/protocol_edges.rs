//! Edge-case tests of the cluster controllers against a scripted fake
//! directory: races the full-system runs only hit probabilistically are
//! forced deterministically here.

use hsc_cluster::{
    CorePair, CoreProgram, CpuConfig, CpuOp, DmaCommand, DmaEngine, GpuCluster, GpuConfig, GpuOp,
    GpuWritePolicy, WavefrontProgram,
};
use hsc_mem::{Addr, LineData, MainMemory};
use hsc_noc::{Action, AgentId, Grant, Message, MsgKind, Outbox, ProbeKind, WordMask};
use hsc_sim::{Tick, WheelQueue};

fn data(v: u64) -> LineData {
    let mut d = LineData::zeroed();
    d.set_word(0, v);
    d
}

#[derive(Debug)]
struct Script(Vec<CpuOp>, usize);

impl CoreProgram for Script {
    fn next_op(&mut self, _last: Option<u64>) -> CpuOp {
        let op = self.0.get(self.1).copied().unwrap_or(CpuOp::Done);
        self.1 += 1;
        op
    }
}

/// Steps a CorePair until it emits a directory request of the given class.
fn run_until_request(pair: &mut CorePair, class: &str, limit: u64) -> Message {
    run_until_request_from(pair, class, limit, Tick(0))
}

/// Like [`run_until_request`] but starting the wake pump at `start`.
fn run_until_request_from(pair: &mut CorePair, class: &str, limit: u64, start: Tick) -> Message {
    let mut q: WheelQueue<Tick> = WheelQueue::new();
    q.schedule(start, start);
    let mut steps = 0;
    while let Some((now, _)) = q.pop() {
        steps += 1;
        assert!(steps < limit, "no {class} request emitted");
        let mut out = Outbox::new(now);
        pair.on_wake(now, &mut out);
        for act in out.into_actions() {
            match act {
                Action::Send(m) if m.kind.class_name() == class => return m,
                Action::Send(_) | Action::SendLater(..) => {}
                Action::Wake(t) => q.schedule(t, t),
            }
        }
    }
    panic!("ran dry without a {class} request");
}

#[test]
fn inv_probe_during_pending_upgrade_invalidates_the_s_copy() {
    // The race: an L2 holds a line Shared, issues RdBlkM (upgrade), and an
    // invalidating probe for another agent's write arrives first. The L2
    // must invalidate and ack clean; the eventual full Resp re-fills it.
    let a = Addr(0x9000);
    let mut pair = CorePair::new(
        0,
        vec![Box::new(Script(
            vec![CpuOp::Load(a), CpuOp::Store(a, 5), CpuOp::Load(a), CpuOp::Done],
            0,
        ))],
        CpuConfig::default(),
    );
    // Load miss → RdBlk.
    let req = run_until_request(&mut pair, "RdBlk", 1000);
    assert_eq!(req.line, a.line());
    // Grant Shared (someone else has it).
    let mut out = Outbox::new(Tick(100));
    pair.on_message(
        Tick(100),
        &Message::new(
            AgentId::Directory,
            pair.agent(),
            a.line(),
            MsgKind::Resp { data: data(1), grant: Grant::Shared },
        ),
        &mut out,
    );
    // Drain the fill's actions (Unblock, wake), then pump until the store
    // re-attempts and issues its upgrade.
    drop(out);
    let up = run_until_request_from(&mut pair, "RdBlkM", 1000, Tick(101));
    assert_eq!(up.line, a.line(), "upgrade issued for the stored line");
    // Before the response, an invalidating probe lands.
    let mut out = Outbox::new(Tick(200));
    pair.on_message(
        Tick(200),
        &Message::new(
            AgentId::Directory,
            pair.agent(),
            a.line(),
            MsgKind::Probe { kind: ProbeKind::Invalidate },
        ),
        &mut out,
    );
    let acks: Vec<Message> = out
        .into_actions()
        .into_iter()
        .filter_map(|a| match a {
            Action::Send(m) => Some(m),
            _ => None,
        })
        .collect();
    match acks[0].kind {
        MsgKind::ProbeAck { dirty, had_copy, .. } => {
            assert!(had_copy, "the S copy was present");
            assert!(dirty.is_none(), "S never forwards data");
        }
        ref k => panic!("expected ProbeAck, got {}", k.class_name()),
    }
    // Now the directory answers the upgrade with full data + M.
    let mut out = Outbox::new(Tick(300));
    pair.on_message(
        Tick(300),
        &Message::new(
            AgentId::Directory,
            pair.agent(),
            a.line(),
            MsgKind::Resp { data: data(9), grant: Grant::Modified },
        ),
        &mut out,
    );
    let mut out2 = Outbox::new(Tick(301));
    pair.on_wake(Tick(301), &mut out2);
    // The store applied over the fresh data: line is dirty with 5.
    let dirty = pair.peek_dirty(a.line()).expect("line must be Modified");
    assert_eq!(dirty.word_at(a), 5);
}

#[test]
fn upgrade_ack_preserves_the_owned_lines_local_stores() {
    // UpgradeAck carries no data: the local O copy must survive verbatim.
    let a = Addr(0xA000);
    let mut pair = CorePair::new(
        0,
        vec![Box::new(Script(
            vec![CpuOp::Store(a, 7), CpuOp::Store(a.word(1), 8), CpuOp::Done],
            0,
        ))],
        CpuConfig::default(),
    );
    let _ = run_until_request(&mut pair, "RdBlkM", 1000);
    let mut out = Outbox::new(Tick(10));
    pair.on_message(
        Tick(10),
        &Message::new(
            AgentId::Directory,
            pair.agent(),
            a.line(),
            MsgKind::Resp { data: data(0), grant: Grant::Modified },
        ),
        &mut out,
    );
    // First store applied; now a downgrade probe turns M into O.
    let mut out = Outbox::new(Tick(20));
    pair.on_message(
        Tick(20),
        &Message::new(
            AgentId::Directory,
            pair.agent(),
            a.line(),
            MsgKind::Probe { kind: ProbeKind::Downgrade },
        ),
        &mut out,
    );
    // Let the second store run: O can't write, so an upgrade goes out.
    let mut q: WheelQueue<()> = WheelQueue::new();
    q.schedule(Tick(21), ());
    let mut got_upgrade = false;
    while let Some((now, ())) = q.pop() {
        let mut out = Outbox::new(now);
        pair.on_wake(now, &mut out);
        for act in out.into_actions() {
            match act {
                Action::Send(m) if matches!(m.kind, MsgKind::RdBlkM) => got_upgrade = true,
                Action::Wake(t) => q.schedule(t, ()),
                _ => {}
            }
        }
        if got_upgrade {
            break;
        }
    }
    assert!(got_upgrade, "store to an O line must request an upgrade");
    // The tracked directory answers with a data-less UpgradeAck.
    let mut out = Outbox::new(Tick(50));
    pair.on_message(
        Tick(50),
        &Message::new(AgentId::Directory, pair.agent(), a.line(), MsgKind::UpgradeAck),
        &mut out,
    );
    let mut out2 = Outbox::new(Tick(51));
    pair.on_wake(Tick(51), &mut out2);
    let dirty = pair.peek_dirty(a.line()).expect("line Modified again");
    assert_eq!(dirty.word_at(a), 7, "first store survived the downgrade + upgrade");
    assert_eq!(dirty.word_at(a.word(1)), 8, "second store applied after UpgradeAck");
}

#[test]
fn wb_tcc_eviction_writes_back_via_write_through() {
    // Fill a TCC set with dirty lines; the eviction must emit a
    // WriteThrough carrying the dirty words (§II-A: WT doubles as the
    // write-back request).
    let cfg = GpuConfig {
        cus: 1,
        tcc_bytes: 2048, // 32 lines, 16 ways → 2 sets
        tcp_bytes: 1024,
        sqc_bytes: 1024,
        tcc_policy: GpuWritePolicy::WriteBack,
        ifetch_interval: 10_000,
        ..GpuConfig::default()
    };
    #[derive(Debug)]
    struct Streamer {
        i: u64,
    }
    impl WavefrontProgram for Streamer {
        fn next_op(&mut self, _last: Option<u64>) -> GpuOp {
            if self.i >= 40 {
                return GpuOp::Done; // no release: eviction must do the WB
            }
            let a = Addr(0x1000 + self.i * 128); // stride 2 lines → one set
            self.i += 1;
            GpuOp::VecStore(vec![(a, self.i)])
        }
    }
    let mut gpu = GpuCluster::new(0, vec![vec![Box::new(Streamer { i: 0 })]], cfg);
    let mut q: WheelQueue<Ev> = WheelQueue::new();
    #[derive(Debug)]
    enum Ev {
        Wake,
        Msg(Message),
    }
    q.schedule(Tick(0), Ev::Wake);
    let mut mem = MainMemory::new();
    let mut wt_seen = 0u64;
    let mut guard = 0;
    while let Some((now, ev)) = q.pop() {
        guard += 1;
        assert!(guard < 100_000);
        let mut out = Outbox::new(now);
        match ev {
            Ev::Wake => gpu.on_wake(now, &mut out),
            Ev::Msg(m) if m.dst == gpu.agent() => gpu.on_message(now, &m, &mut out),
            Ev::Msg(m) => {
                let resp = match m.kind {
                    MsgKind::WriteThrough { data, mask, .. } => {
                        wt_seen += 1;
                        let mut line = mem.read_line(m.line);
                        mask.apply(&mut line, &data);
                        mem.write_line(m.line, line);
                        MsgKind::WtAck
                    }
                    MsgKind::RdBlk => {
                        MsgKind::Resp { data: mem.read_line(m.line), grant: Grant::Shared }
                    }
                    MsgKind::Flush => MsgKind::FlushAck,
                    ref k => panic!("unexpected {}", k.class_name()),
                };
                q.schedule(now + 5, Ev::Msg(Message::new(AgentId::Directory, m.src, m.line, resp)));
            }
        }
        for act in out.into_actions() {
            match act {
                Action::Send(m) => q.schedule(now + 5, Ev::Msg(m)),
                Action::SendLater(t, m) => q.schedule(t + 5, Ev::Msg(m)),
                Action::Wake(t) => q.schedule(t, Ev::Wake),
            }
        }
    }
    assert!(wt_seen > 0, "dirty TCC evictions must write back");
    // 40 stores, 2-line stride into a 2-set TCC: the first victims are the
    // oldest lines; each carried its store.
    let mut survived = 0;
    for i in 0..40u64 {
        if mem.read_word(Addr(0x1000 + i * 128)) == i + 1 {
            survived += 1;
        }
    }
    assert_eq!(wt_seen, survived, "every write-back delivered its dirty word");
}

#[test]
fn dma_commands_execute_strictly_in_order() {
    // A data command and a flag command issued at the same tick: the
    // flag's DmaWr must not be issued until every line of the data
    // command has been acknowledged.
    let words: Vec<u64> = (0..32).collect(); // 4 lines
    let mut dma = DmaEngine::new(
        vec![
            DmaCommand::Write { base: Addr(0x4000), words, at: Tick(0) },
            DmaCommand::Write { base: Addr(0x5000), words: vec![1], at: Tick(0) },
        ],
        16,
    );
    let mut out = Outbox::new(Tick(0));
    dma.on_wake(Tick(0), &mut out);
    let first: Vec<Message> = out
        .into_actions()
        .into_iter()
        .filter_map(|a| match a {
            Action::Send(m) => Some(m),
            _ => None,
        })
        .collect();
    assert_eq!(first.len(), 4, "only the first command's lines are issued");
    assert!(first.iter().all(|m| m.line.base().0 < 0x5000));
    // Ack three of four: the flag still must not go out.
    for m in &first[..3] {
        let mut out = Outbox::new(Tick(10));
        dma.on_message(
            Tick(10),
            &Message::new(AgentId::Directory, AgentId::Dma, m.line, MsgKind::DmaWrAck),
            &mut out,
        );
        assert!(
            out.actions().iter().all(|a| !matches!(a, Action::Send(_))),
            "flag leaked before the data command completed"
        );
    }
    // The fourth ack releases the flag command.
    let mut out = Outbox::new(Tick(20));
    dma.on_message(
        Tick(20),
        &Message::new(AgentId::Directory, AgentId::Dma, first[3].line, MsgKind::DmaWrAck),
        &mut out,
    );
    let flag: Vec<Message> = out
        .into_actions()
        .into_iter()
        .filter_map(|a| match a {
            Action::Send(m) => Some(m),
            _ => None,
        })
        .collect();
    assert_eq!(flag.len(), 1);
    assert_eq!(flag[0].line, Addr(0x5000).line());
    match flag[0].kind {
        MsgKind::DmaWr { mask, .. } => assert_eq!(mask, WordMask::single(0)),
        ref k => panic!("expected DmaWr, got {}", k.class_name()),
    }
}

#[test]
fn slc_atomic_self_invalidates_cached_copies() {
    // A TCC copy of a line must not survive an SLC atomic to that line
    // (the directory-side modification would make it stale).
    let a = Addr(0x7000);
    #[derive(Debug)]
    struct P {
        step: u32,
    }
    impl WavefrontProgram for P {
        fn next_op(&mut self, last: Option<u64>) -> GpuOp {
            self.step += 1;
            match self.step {
                1 => GpuOp::VecLoad(vec![Addr(0x7000)]),
                2 => GpuOp::AtomicSlc(Addr(0x7000), hsc_mem::AtomicKind::FetchAdd(1)),
                3 => {
                    assert_eq!(last, Some(0), "old value from the directory");
                    GpuOp::VecLoad(vec![Addr(0x7000)]) // must MISS and refetch
                }
                4 => {
                    assert_eq!(last, Some(1), "the refetch sees the atomic's result");
                    GpuOp::Done
                }
                _ => GpuOp::Done,
            }
        }
    }
    let cfg = GpuConfig {
        cus: 1,
        tcp_bytes: 1024,
        tcc_bytes: 2048,
        sqc_bytes: 1024,
        ifetch_interval: 10_000,
        ..GpuConfig::default()
    };
    let mut gpu = GpuCluster::new(0, vec![vec![Box::new(P { step: 0 })]], cfg);
    // Mini fake directory executing the atomic functionally.
    #[derive(Debug)]
    enum Ev {
        Wake,
        Msg(Message),
    }
    let mut q: WheelQueue<Ev> = WheelQueue::new();
    q.schedule(Tick(0), Ev::Wake);
    let mut mem = MainMemory::new();
    let mut rdblks = 0;
    let mut guard = 0;
    while let Some((now, ev)) = q.pop() {
        guard += 1;
        assert!(guard < 10_000);
        let mut out = Outbox::new(now);
        match ev {
            Ev::Wake => gpu.on_wake(now, &mut out),
            Ev::Msg(m) if m.dst == gpu.agent() => gpu.on_message(now, &m, &mut out),
            Ev::Msg(m) => {
                let resp = match m.kind {
                    MsgKind::RdBlk => {
                        rdblks += 1;
                        MsgKind::Resp { data: mem.read_line(m.line), grant: Grant::Shared }
                    }
                    MsgKind::AtomicReq { word, op } => {
                        let mut line = mem.read_line(m.line);
                        let old = line.apply_atomic(m.line.word_addr(word as usize), op);
                        mem.write_line(m.line, line);
                        MsgKind::AtomicResp { old }
                    }
                    ref k => panic!("unexpected {}", k.class_name()),
                };
                q.schedule(now + 5, Ev::Msg(Message::new(AgentId::Directory, m.src, m.line, resp)));
            }
        }
        for act in out.into_actions() {
            match act {
                Action::Send(m) => q.schedule(now + 5, Ev::Msg(m)),
                Action::SendLater(t, m) => q.schedule(t + 5, Ev::Msg(m)),
                Action::Wake(t) => q.schedule(t, Ev::Wake),
            }
        }
    }
    assert!(gpu.is_done());
    assert_eq!(rdblks, 2, "the post-atomic load must refetch (self-invalidation)");
    assert_eq!(mem.read_word(a), 1);
}
