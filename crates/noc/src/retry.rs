//! NACK-style request retry with bounded exponential backoff.
//!
//! The coherence protocols are loss-free by construction, so requesters
//! normally fire-and-forget. Under fault injection a request (or its
//! response) can vanish; [`RetryTracker`] gives every requester a uniform
//! recovery layer: remember each outstanding request verbatim (messages
//! are `Copy`), and if no acknowledgment arrives within the policy's
//! timeout, re-send it with an exponentially growing (bounded) deadline,
//! up to a retry cap — past the cap the watchdog diagnoses the stall.
//!
//! Retry is entirely opt-in: controllers hold an `Option<RetryPolicy>`
//! and skip all tracking (and the wake-ups it needs) when it is `None`,
//! so fault-free runs execute the exact same event sequence as before
//! this layer existed.

use std::collections::BTreeMap;

use hsc_mem::LineAddr;
use hsc_sim::Tick;

use crate::Message;

/// When and how often an unanswered request is re-sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Ticks to wait for an acknowledgment before the first re-send.
    pub timeout: u64,
    /// Maximum number of re-sends per request; after that the tracker
    /// gives up and leaves diagnosis to the watchdog.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    /// 200k ticks (~5.2 µs simulated, comfortably above a worst-case
    /// directory transaction) and 6 retries.
    fn default() -> Self {
        RetryPolicy { timeout: 200_000, max_retries: 6 }
    }
}

impl RetryPolicy {
    /// Deadline delay before re-send number `attempt` (0-based): the
    /// timeout doubles per attempt, bounded at 8×.
    #[must_use]
    pub fn backoff(self, attempt: u32) -> u64 {
        self.timeout.saturating_mul(1u64 << attempt.min(3))
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    msg: Message,
    deadline: Tick,
    attempts: u32,
}

/// Tracks outstanding requests (keyed by line) and decides which to
/// re-send when a deadline passes.
///
/// # Examples
///
/// ```
/// use hsc_mem::LineAddr;
/// use hsc_noc::{AgentId, Message, MsgKind, RetryPolicy, RetryTracker};
/// use hsc_sim::Tick;
///
/// let mut rt = RetryTracker::new(RetryPolicy { timeout: 100, max_retries: 2 });
/// let m = Message::new(AgentId::CorePairL2(0), AgentId::Directory, LineAddr(4), MsgKind::RdBlk);
/// rt.track(Tick(0), m);
/// assert!(rt.due(Tick(50)).is_empty());       // not yet
/// assert_eq!(rt.due(Tick(101)), vec![m]);     // re-send now
/// rt.acked(LineAddr(4));                      // response arrived
/// assert!(rt.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RetryTracker {
    policy: Option<RetryPolicy>,
    pending: BTreeMap<u64, PendingRetry>,
    armed: Option<Tick>,
    resent: u64,
    gave_up: u64,
}

impl RetryTracker {
    /// Creates a tracker with the given policy.
    #[must_use]
    pub fn new(policy: RetryPolicy) -> RetryTracker {
        RetryTracker::maybe(Some(policy))
    }

    /// Creates a tracker that is inert when `policy` is `None` (every
    /// call becomes a no-op, so disabled retry costs nothing).
    #[must_use]
    pub fn maybe(policy: Option<RetryPolicy>) -> RetryTracker {
        RetryTracker { policy, pending: BTreeMap::new(), armed: None, resent: 0, gave_up: 0 }
    }

    /// Whether a policy is configured at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.policy.is_some()
    }

    /// Starts tracking `msg` (sent at `now`). First-wins per line: a
    /// second `track` for the same line keeps the original entry (the
    /// protocols allow at most one outstanding request per line per
    /// requester, so a collision is a re-send of the same request).
    pub fn track(&mut self, now: Tick, msg: Message) {
        let Some(policy) = self.policy else { return };
        self.pending.entry(msg.line.0).or_insert(PendingRetry {
            msg,
            deadline: now + policy.backoff(0),
            attempts: 0,
        });
    }

    /// The request on `line` was acknowledged; stop tracking it.
    pub fn acked(&mut self, line: LineAddr) {
        self.pending.remove(&line.0);
    }

    /// All requests whose deadline has passed at `now`, re-armed with
    /// their next backoff deadline. Requests past the retry cap are
    /// dropped from tracking (counted in [`gave_up`](RetryTracker::gave_up))
    /// instead of returned.
    pub fn due(&mut self, now: Tick) -> Vec<Message> {
        let Some(policy) = self.policy else { return Vec::new() };
        let mut out = Vec::new();
        let mut exhausted = Vec::new();
        for (&line, p) in self.pending.iter_mut() {
            if p.deadline > now {
                continue;
            }
            if p.attempts >= policy.max_retries {
                exhausted.push(line);
                continue;
            }
            p.attempts += 1;
            p.deadline = now + policy.backoff(p.attempts);
            out.push(p.msg);
        }
        for line in exhausted {
            self.pending.remove(&line);
            self.gave_up += 1;
        }
        self.resent += out.len() as u64;
        out
    }

    /// The earliest deadline among tracked requests, for scheduling the
    /// next retry wake-up.
    #[must_use]
    pub fn next_deadline(&self) -> Option<Tick> {
        self.pending.values().map(|p| p.deadline).min()
    }

    /// The earliest deadline *if a wake-up still needs scheduling for it*.
    ///
    /// Controllers often get woken every cycle for unrelated reasons;
    /// scheduling a `wake_at(deadline)` on each of those wake-ups piles up
    /// duplicate events (each of which would schedule more), snowballing
    /// into an event storm. This arms each distinct deadline exactly once:
    /// the caller MUST schedule a wake-up when `Some` is returned.
    #[must_use]
    pub fn wake_needed(&mut self) -> Option<Tick> {
        let d = self.next_deadline()?;
        if self.armed == Some(d) {
            return None;
        }
        self.armed = Some(d);
        Some(d)
    }

    /// Whether nothing is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of tracked requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Total re-sends so far.
    #[must_use]
    pub fn resent(&self) -> u64 {
        self.resent
    }

    /// Requests abandoned after exhausting their retries.
    #[must_use]
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// The lines currently awaiting an acknowledgment (for diagnostics).
    pub fn pending_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.pending.keys().map(|&l| LineAddr(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgentId, MsgKind};

    fn m(line: u64) -> Message {
        Message::new(AgentId::CorePairL2(0), AgentId::Directory, LineAddr(line), MsgKind::RdBlkM)
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy { timeout: 100, max_retries: 10 };
        assert_eq!(p.backoff(0), 100);
        assert_eq!(p.backoff(1), 200);
        assert_eq!(p.backoff(2), 400);
        assert_eq!(p.backoff(3), 800);
        assert_eq!(p.backoff(9), 800, "backoff is bounded");
    }

    #[test]
    fn due_respects_deadlines_and_rearms() {
        let mut rt = RetryTracker::new(RetryPolicy { timeout: 100, max_retries: 3 });
        rt.track(Tick(0), m(1));
        rt.track(Tick(10), m(2));
        assert_eq!(rt.next_deadline(), Some(Tick(100)));
        assert!(rt.due(Tick(99)).is_empty());
        assert_eq!(rt.due(Tick(100)), vec![m(1)]);
        // Re-armed with doubled backoff from `now`.
        assert_eq!(rt.next_deadline(), Some(Tick(110)));
        assert_eq!(rt.due(Tick(301)), vec![m(1), m(2)]);
        assert_eq!(rt.resent(), 3);
    }

    #[test]
    fn gives_up_after_the_cap() {
        let mut rt = RetryTracker::new(RetryPolicy { timeout: 10, max_retries: 1 });
        rt.track(Tick(0), m(4));
        assert_eq!(rt.due(Tick(1000)).len(), 1); // retry #1
        assert_eq!(rt.due(Tick(2000)).len(), 0); // cap reached: abandoned
        assert!(rt.is_empty());
        assert_eq!(rt.gave_up(), 1);
    }

    #[test]
    fn first_wins_on_the_same_line_and_ack_clears() {
        let mut rt = RetryTracker::new(RetryPolicy { timeout: 100, max_retries: 3 });
        rt.track(Tick(0), m(7));
        rt.track(Tick(50), m(7)); // keeps the original deadline
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.next_deadline(), Some(Tick(100)));
        assert_eq!(rt.pending_lines().collect::<Vec<_>>(), vec![LineAddr(7)]);
        rt.acked(LineAddr(7));
        assert!(rt.is_empty());
        assert_eq!(rt.next_deadline(), None);
    }

    #[test]
    fn disabled_tracker_is_inert() {
        let mut rt = RetryTracker::maybe(None);
        assert!(!rt.enabled());
        rt.track(Tick(0), m(1));
        assert!(rt.is_empty());
        assert!(rt.due(Tick(1_000_000)).is_empty());
        assert_eq!(rt.next_deadline(), None);
    }

    #[test]
    fn wake_needed_arms_each_deadline_once() {
        let mut rt = RetryTracker::new(RetryPolicy { timeout: 100, max_retries: 3 });
        rt.track(Tick(0), m(1));
        assert_eq!(rt.wake_needed(), Some(Tick(100)));
        // Asked again (e.g. by an unrelated per-cycle wake-up): already armed.
        assert_eq!(rt.wake_needed(), None);
        // The retry fires and re-arms; the new deadline needs one wake-up.
        assert_eq!(rt.due(Tick(100)), vec![m(1)]);
        assert_eq!(rt.wake_needed(), Some(Tick(300)));
        assert_eq!(rt.wake_needed(), None);
        // A new earlier deadline re-arms immediately.
        rt.track(Tick(110), m(2));
        assert_eq!(rt.wake_needed(), Some(Tick(210)));
    }
}
