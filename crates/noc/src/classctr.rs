//! Class-indexed arrays of interned counter ids.
//!
//! Per-class counters (`net.msg.{class}`, `dir.requests.{class}`, …) used
//! to be built with `format!("prefix.{}", kind.class_name())` on every
//! message — a heap allocation plus a string-keyed map walk on the
//! hottest path in the simulator. A [`ClassCounters`] interns all
//! [`MsgKind::NUM_CLASSES`] keys once at construction; per message the
//! lookup is an array index by [`MsgKind::class_index`].

use hsc_sim::{CounterId, Counters};

use crate::MsgKind;

/// One interned counter id per message class, under a common key prefix.
///
/// # Examples
///
/// ```
/// use hsc_noc::{ClassCounters, MsgKind};
/// use hsc_sim::Counters;
///
/// let mut c = Counters::new();
/// let by_class = ClassCounters::register_hidden(&mut c, "net.msg");
/// c.bump(by_class.id(&MsgKind::RdBlk));
/// assert_eq!(c.export().get("net.msg.RdBlk"), 1);
/// assert_eq!(c.export().len(), 1); // hidden classes that never fired stay absent
/// ```
#[derive(Debug, Clone)]
pub struct ClassCounters {
    ids: [CounterId; MsgKind::NUM_CLASSES],
}

impl ClassCounters {
    /// Interns `prefix.{class}` for every class as **hidden** keys: a
    /// class appears in exports only once a message of that class was
    /// counted — matching the old on-demand `format!`-key behavior.
    pub fn register_hidden(counters: &mut Counters, prefix: &str) -> Self {
        ClassCounters {
            ids: std::array::from_fn(|i| {
                counters.register_hidden(&format!("{prefix}.{}", MsgKind::CLASS_NAMES[i]))
            }),
        }
    }

    /// Interns `prefix.{class}` for every class, marking the classes
    /// named in `visible` as export-at-zero (the old `StatSet::touch`
    /// pre-registration) and the rest hidden.
    ///
    /// # Panics
    ///
    /// Panics if `visible` names an unknown class — a typo here would
    /// silently change report contents.
    pub fn register(counters: &mut Counters, prefix: &str, visible: &[&str]) -> Self {
        for class in visible {
            assert!(
                MsgKind::CLASS_NAMES.contains(class),
                "unknown message class {class:?} in visible set for {prefix:?}"
            );
        }
        ClassCounters {
            ids: std::array::from_fn(|i| {
                let name = format!("{prefix}.{}", MsgKind::CLASS_NAMES[i]);
                if visible.contains(&MsgKind::CLASS_NAMES[i]) {
                    counters.register(&name)
                } else {
                    counters.register_hidden(&name)
                }
            }),
        }
    }

    /// The interned id for `kind`'s class.
    #[must_use]
    #[inline]
    pub fn id(&self, kind: &MsgKind) -> CounterId {
        self.ids[kind.class_index()]
    }

    /// Sum of all class slots — the dense-array equivalent of
    /// `StatSet::sum_prefix("prefix.")`.
    #[must_use]
    pub fn total(&self, counters: &Counters) -> u64 {
        self.ids.iter().map(|&id| counters.get(id)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visible_classes_export_at_zero_hidden_ones_do_not() {
        let mut c = Counters::new();
        let arr = ClassCounters::register(&mut c, "dir.requests", &["RdBlk", "WT"]);
        let set = c.export();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("dir.requests.RdBlk"), 0);
        assert_eq!(set.get("dir.requests.WT"), 0);
        c.bump(arr.id(&MsgKind::Unblock));
        assert_eq!(c.export().get("dir.requests.Unblock"), 1);
        assert_eq!(c.export().len(), 3);
    }

    #[test]
    fn total_sums_every_class_slot() {
        let mut c = Counters::new();
        let arr = ClassCounters::register_hidden(&mut c, "net.msg");
        c.bump(arr.id(&MsgKind::RdBlk));
        c.bump(arr.id(&MsgKind::MemRd));
        c.add(arr.id(&MsgKind::Unblock), 3);
        assert_eq!(arr.total(&c), 5);
    }

    #[test]
    #[should_panic(expected = "unknown message class")]
    fn typoed_visible_class_panics_at_construction() {
        let mut c = Counters::new();
        let _ = ClassCounters::register(&mut c, "x", &["RdBlq"]);
    }
}
