use hsc_sim::Tick;

use crate::Message;

/// A side effect a controller requests from the system driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Put a message on the NoC (the driver applies network latency).
    Send(Message),
    /// Put a message on the NoC at a future tick (used to model a
    /// controller's own access latency, e.g. the directory's 20-cycle
    /// lookup before its probes leave).
    SendLater(Tick, Message),
    /// Re-invoke this controller's `on_wake` at the given tick.
    Wake(Tick),
}

/// Collects the actions a controller produces while handling one event.
///
/// Controllers (`CorePair`, GPU cluster, DMA engine, directory, memory
/// controller) never touch the event queue directly; they stage sends and
/// wake-ups here and the system driver applies them. This keeps every
/// controller a plain deterministic state machine that is easy to unit-test
/// in isolation: call a handler, inspect the outbox.
///
/// # Examples
///
/// ```
/// use hsc_mem::LineAddr;
/// use hsc_noc::{Action, AgentId, Message, MsgKind, Outbox};
/// use hsc_sim::Tick;
///
/// let mut out = Outbox::new(Tick(100));
/// out.send(Message::new(AgentId::CorePairL2(0), AgentId::Directory, LineAddr(0), MsgKind::RdBlk));
/// out.wake_after(20);
/// assert_eq!(out.actions().len(), 2);
/// assert!(matches!(out.actions()[1], Action::Wake(Tick(120))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbox {
    now: Tick,
    actions: Vec<Action>,
}

impl Outbox {
    /// Creates an outbox for an event being handled at `now`.
    #[must_use]
    pub fn new(now: Tick) -> Self {
        Outbox { now, actions: Vec::new() }
    }

    /// The tick of the event being handled.
    #[must_use]
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Rewinds the outbox for reuse at a new event time: staged actions
    /// are cleared but allocated capacity is kept. An event loop handling
    /// hundreds of thousands of events can reuse one outbox instead of
    /// allocating a fresh action buffer per event.
    pub fn reset(&mut self, now: Tick) {
        self.now = now;
        self.actions.clear();
    }

    /// Drains the staged actions in order, leaving the outbox empty but
    /// with its capacity intact (pairs with [`Outbox::reset`]).
    pub fn drain_actions(&mut self) -> std::vec::Drain<'_, Action> {
        self.actions.drain(..)
    }

    /// Stages a message send.
    pub fn send(&mut self, msg: Message) {
        self.actions.push(Action::Send(msg));
    }

    /// Stages a message send `delay` ticks from now (network latency is
    /// applied on top by the driver).
    pub fn send_after(&mut self, delay: u64, msg: Message) {
        self.actions.push(Action::SendLater(self.now + delay, msg));
    }

    /// Stages a wake-up at an absolute tick.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn wake_at(&mut self, at: Tick) {
        assert!(at >= self.now, "wake_at({at}) is before now ({})", self.now);
        self.actions.push(Action::Wake(at));
    }

    /// Stages a wake-up `delay` ticks from now.
    pub fn wake_after(&mut self, delay: u64) {
        self.actions.push(Action::Wake(self.now + delay));
    }

    /// The staged actions, in the order they were produced.
    #[must_use]
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Consumes the outbox, returning the staged actions.
    #[must_use]
    pub fn into_actions(self) -> Vec<Action> {
        self.actions
    }

    /// Whether nothing was staged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgentId, MsgKind};
    use hsc_mem::LineAddr;

    #[test]
    fn actions_preserve_order() {
        let mut out = Outbox::new(Tick(5));
        out.wake_after(1);
        out.send(Message::new(AgentId::Dma, AgentId::Directory, LineAddr(0), MsgKind::DmaRd));
        out.wake_at(Tick(10));
        let acts = out.into_actions();
        assert_eq!(acts.len(), 3);
        assert!(matches!(acts[0], Action::Wake(Tick(6))));
        assert!(matches!(acts[1], Action::Send(_)));
        assert!(matches!(acts[2], Action::Wake(Tick(10))));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn waking_in_the_past_panics() {
        let mut out = Outbox::new(Tick(5));
        out.wake_at(Tick(4));
    }

    #[test]
    fn empty_outbox_reports_empty() {
        let out = Outbox::new(Tick(0));
        assert!(out.is_empty());
        assert_eq!(out.now(), Tick(0));
    }

    #[test]
    fn send_after_stamps_future_tick() {
        let mut out = Outbox::new(Tick(10));
        out.send_after(
            7,
            Message::new(AgentId::Dma, AgentId::Directory, LineAddr(0), MsgKind::DmaRd),
        );
        assert!(matches!(out.actions()[0], Action::SendLater(Tick(17), _)));
    }
}
