//! Deterministic fault injection on top of [`Network`].
//!
//! [`FaultyNetwork`] wraps the interconnect and, driven by a seeded
//! [`DetRng`], can **drop**, **duplicate** or **extra-delay** messages of
//! selected classes — the transient failures a robust coherence protocol
//! must survive (or at least diagnose). Every injected fault is counted,
//! and the whole layer is *zero-cost when disabled*: with no
//! [`FaultPlan`], `send` is a plain forward to [`Network::send`] with no
//! RNG draws and no extra statistics, so fault-free runs produce
//! byte-identical metrics to a build without this module.
//!
//! Caveat on delay faults: the protocols rely on the point-to-point FIFO
//! ordering that *constant* per-pair latency provides. An extra-delayed
//! message can be overtaken by a later one, which exercises reordering
//! tolerance the protocol does not promise — use `delay_ppm` for targeted
//! stress tests, and drops/duplicates for campaigns that assert recovery.

use hsc_sim::{CounterId, Counters, DetRng, StatSet, Tick};

use crate::network::{Network, WiringError};
use crate::{ClassCounters, Message};

/// Which message classes a [`FaultPlan`] may touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultTargets {
    /// Every message class is eligible.
    #[default]
    All,
    /// Only directory-bound request classes (RdBlk*, Vic*, WT, Atomic,
    /// Flush, DMA).
    Requests,
    /// Only the request classes the retry layer actually re-sends: every
    /// directory-bound request *except* `Atomic`, which is non-idempotent
    /// (a retried fetch-add whose original survived would apply twice) and
    /// therefore never retried.
    RetryableRequests,
    /// Only messages of one exact class (see [`crate::MsgKind::class_name`]),
    /// for surgically inducing a specific loss in tests.
    Class(&'static str),
}

impl FaultTargets {
    /// Whether `msg` is eligible under this target set.
    #[must_use]
    pub fn matches(self, msg: &Message) -> bool {
        match self {
            FaultTargets::All => true,
            FaultTargets::Requests => msg.kind.is_dir_request(),
            FaultTargets::RetryableRequests => {
                msg.kind.is_dir_request() && msg.kind.class_name() != "Atomic"
            }
            FaultTargets::Class(name) => msg.kind.class_name() == name,
        }
    }
}

/// A deterministic description of which faults to inject.
///
/// Rates are in parts-per-million per *message*; decisions are drawn from
/// a [`DetRng`] seeded with `seed`, so the same plan over the same
/// workload injects the same faults every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the fault-decision RNG.
    pub seed: u64,
    /// Probability (ppm) of silently dropping an eligible message.
    pub drop_ppm: u32,
    /// Probability (ppm) of delivering an eligible message twice.
    pub dup_ppm: u32,
    /// Probability (ppm) of adding [`extra_delay`](FaultPlan::extra_delay)
    /// ticks to an eligible message (see the module docs for the ordering
    /// caveat).
    pub delay_ppm: u32,
    /// Ticks added by a delay fault.
    pub extra_delay: u64,
    /// Which message classes may be touched.
    pub targets: FaultTargets,
    /// Upper bound on the total number of injected faults (`u64::MAX` for
    /// unlimited). `max_faults: 1` gives a deterministic single-fault run.
    pub max_faults: u64,
}

impl FaultPlan {
    /// A plan that drops eligible messages at `drop_ppm` and does nothing
    /// else.
    #[must_use]
    pub fn drops(seed: u64, drop_ppm: u32) -> FaultPlan {
        FaultPlan {
            seed,
            drop_ppm,
            dup_ppm: 0,
            delay_ppm: 0,
            extra_delay: 0,
            targets: FaultTargets::All,
            max_faults: u64::MAX,
        }
    }

    /// A plan that deterministically drops exactly the first eligible
    /// message of class `class` (rate 100%, budget 1) — the canonical way
    /// to induce one specific loss in a test.
    #[must_use]
    pub fn drop_first(class: &'static str) -> FaultPlan {
        FaultPlan {
            seed: 0,
            drop_ppm: 1_000_000,
            dup_ppm: 0,
            delay_ppm: 0,
            extra_delay: 0,
            targets: FaultTargets::Class(class),
            max_faults: 1,
        }
    }

    /// Same plan with a different target set.
    #[must_use]
    pub fn with_targets(mut self, targets: FaultTargets) -> FaultPlan {
        self.targets = targets;
        self
    }

    /// Same plan with a fault budget.
    #[must_use]
    pub fn with_max_faults(mut self, max_faults: u64) -> FaultPlan {
        self.max_faults = max_faults;
        self
    }
}

/// What happened to a message entering the (possibly faulty) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Normal delivery at the given tick.
    Deliver(Tick),
    /// Duplicate fault: two deliveries of the same message.
    Twice(Tick, Tick),
    /// Drop fault: the message vanishes in the interconnect.
    Dropped,
}

/// [`Network`] plus optional deterministic fault injection.
///
/// # Examples
///
/// ```
/// use hsc_mem::LineAddr;
/// use hsc_noc::{AgentId, Delivery, FaultPlan, FaultyNetwork, LatencyMap, Message, MsgKind};
/// use hsc_sim::Tick;
///
/// // Deterministically drop the first RdBlk.
/// let mut net = FaultyNetwork::new(LatencyMap::default(), Some(FaultPlan::drop_first("RdBlk")));
/// let m = Message::new(AgentId::CorePairL2(0), AgentId::Directory, LineAddr(1), MsgKind::RdBlk);
/// assert_eq!(net.send(Tick(0), &m).unwrap(), Delivery::Dropped);
/// assert_eq!(net.faults_injected(), 1);
/// // Budget exhausted: the next one sails through.
/// assert_eq!(net.send(Tick(5), &m).unwrap(), Delivery::Deliver(Tick(35)));
/// ```
#[derive(Debug, Clone)]
pub struct FaultyNetwork {
    inner: Network,
    plan: Option<FaultPlan>,
    rng: DetRng,
    injected: u64,
    immediate: bool,
    counters: Counters,
    ids: FaultIds,
}

/// Interned ids for the fault counters, all hidden: a fault-free run
/// exports an empty set, exactly like the old on-demand string keys.
#[derive(Debug, Clone)]
struct FaultIds {
    dropped: CounterId,
    dropped_by_class: ClassCounters,
    duplicated: CounterId,
    duplicated_by_class: ClassCounters,
    delayed: CounterId,
    delayed_by_class: ClassCounters,
}

impl FaultIds {
    fn register(counters: &mut Counters) -> FaultIds {
        FaultIds {
            dropped: counters.register_hidden("faults.dropped"),
            dropped_by_class: ClassCounters::register_hidden(counters, "faults.dropped"),
            duplicated: counters.register_hidden("faults.duplicated"),
            duplicated_by_class: ClassCounters::register_hidden(counters, "faults.duplicated"),
            delayed: counters.register_hidden("faults.delayed"),
            delayed_by_class: ClassCounters::register_hidden(counters, "faults.delayed"),
        }
    }
}

impl FaultyNetwork {
    /// Creates a network with the given latencies and optional fault plan.
    #[must_use]
    pub fn new(latency: crate::LatencyMap, plan: Option<FaultPlan>) -> FaultyNetwork {
        let mut counters = Counters::new();
        let ids = FaultIds::register(&mut counters);
        FaultyNetwork {
            inner: Network::new(latency),
            plan,
            rng: DetRng::new(plan.map_or(0, |p| p.seed)),
            injected: 0,
            immediate: false,
            counters,
            ids,
        }
    }

    /// Switches to *immediate delivery*: every accepted message arrives at
    /// its send tick instead of after the modelled latency (duplicates
    /// collapse to two same-tick copies; extra-delay faults still add their
    /// delay so the fault stays observable).
    ///
    /// This hands delivery *ordering* to whoever drains the event queue —
    /// with latencies flattened to zero, which message is handled next is
    /// purely the driver's choice. The model checker uses this to explore
    /// all interleavings rather than the one FIFO timing would pick.
    /// Wiring validation and traffic statistics are unaffected.
    pub fn set_immediate_delivery(&mut self, on: bool) {
        self.immediate = on;
    }

    /// Whether immediate delivery is active.
    #[must_use]
    pub fn immediate_delivery(&self) -> bool {
        self.immediate
    }

    /// Accepts `msg` at `now`, applying any planned fault.
    ///
    /// The message is always counted in the underlying traffic statistics
    /// (it entered the interconnect); faults decide what comes out.
    ///
    /// # Errors
    ///
    /// Returns [`WiringError`] when no link exists between the endpoints.
    pub fn send(&mut self, now: Tick, msg: &Message) -> Result<Delivery, WiringError> {
        let mut arrive = self.inner.send(now, msg)?;
        if self.immediate {
            arrive = now;
        }
        let Some(plan) = self.plan else {
            return Ok(Delivery::Deliver(arrive));
        };
        if self.injected >= plan.max_faults || !plan.targets.matches(msg) {
            return Ok(Delivery::Deliver(arrive));
        }
        const PPM: u64 = 1_000_000;
        if plan.drop_ppm > 0 && self.rng.chance(u64::from(plan.drop_ppm), PPM) {
            self.injected += 1;
            self.counters.bump(self.ids.dropped);
            self.counters.bump(self.ids.dropped_by_class.id(&msg.kind));
            return Ok(Delivery::Dropped);
        }
        if plan.dup_ppm > 0 && self.rng.chance(u64::from(plan.dup_ppm), PPM) {
            self.injected += 1;
            self.counters.bump(self.ids.duplicated);
            self.counters.bump(self.ids.duplicated_by_class.id(&msg.kind));
            // The copy takes one extra hop worth of latency so the pair
            // stays ordered (original first). Under immediate delivery both
            // land now; the explorer owns their relative order.
            let copy_at =
                if self.immediate { arrive } else { arrive + self.inner.latency_map().cache_dir };
            return Ok(Delivery::Twice(arrive, copy_at));
        }
        if plan.delay_ppm > 0 && self.rng.chance(u64::from(plan.delay_ppm), PPM) {
            self.injected += 1;
            self.counters.bump(self.ids.delayed);
            self.counters.bump(self.ids.delayed_by_class.id(&msg.kind));
            return Ok(Delivery::Deliver(arrive + plan.extra_delay));
        }
        Ok(Delivery::Deliver(arrive))
    }

    /// The configured fault plan, if any.
    #[must_use]
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Total faults injected so far.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.injected
    }

    /// Per-kind fault counters exported for reports:
    /// `faults.dropped[.<Class>]`, `faults.duplicated[.<Class>]`,
    /// `faults.delayed[.<Class>]`. Counters that never fired are absent,
    /// so a fault-free run exports an empty set.
    #[must_use]
    pub fn fault_stats(&self) -> StatSet {
        self.counters.export()
    }

    /// The underlying network (traffic statistics, latency map).
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.inner
    }

    /// A fresh fault-free sibling: same latency map, zeroed counters, no
    /// plan. The sharded run engine gives each shard one of these for its
    /// intra-shard traffic (fault decisions, when a plan exists, are made
    /// centrally on the original so the RNG stream matches the serial
    /// run's send order).
    #[must_use]
    pub fn sibling(&self) -> FaultyNetwork {
        FaultyNetwork::new(self.inner.latency_map(), None)
    }

    /// Adds another instance's traffic and fault counters into this one
    /// (see [`Network::absorb`]); injection counts sum too. The RNG state
    /// and plan are untouched.
    pub fn absorb(&mut self, other: &FaultyNetwork) {
        self.inner.absorb(other.network());
        self.counters.absorb(&other.counters);
        self.injected += other.injected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AgentId, LatencyMap, MsgKind};
    use hsc_mem::LineAddr;

    fn req(line: u64) -> Message {
        Message::new(AgentId::CorePairL2(0), AgentId::Directory, LineAddr(line), MsgKind::RdBlk)
    }

    fn resp(line: u64) -> Message {
        Message::new(
            AgentId::Directory,
            AgentId::CorePairL2(0),
            LineAddr(line),
            MsgKind::Resp { data: hsc_mem::LineData::zeroed(), grant: crate::Grant::Shared },
        )
    }

    #[test]
    fn no_plan_is_transparent() {
        let mut net = FaultyNetwork::new(LatencyMap::default(), None);
        for i in 0..100 {
            assert!(matches!(net.send(Tick(i), &req(i)).unwrap(), Delivery::Deliver(_)));
        }
        assert_eq!(net.faults_injected(), 0);
        assert!(net.fault_stats().is_empty());
        assert_eq!(net.network().stats().get("net.msg.RdBlk"), 100);
    }

    #[test]
    fn drop_first_hits_exactly_one_message_of_the_class() {
        let mut net =
            FaultyNetwork::new(LatencyMap::default(), Some(FaultPlan::drop_first("Resp")));
        // Requests are not the targeted class.
        assert!(matches!(net.send(Tick(0), &req(1)).unwrap(), Delivery::Deliver(_)));
        assert_eq!(net.send(Tick(1), &resp(1)).unwrap(), Delivery::Dropped);
        // Budget of one: later Resps deliver.
        assert!(matches!(net.send(Tick(2), &resp(2)).unwrap(), Delivery::Deliver(_)));
        assert_eq!(net.faults_injected(), 1);
        assert_eq!(net.fault_stats().get("faults.dropped"), 1);
        assert_eq!(net.fault_stats().get("faults.dropped.Resp"), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let plan = FaultPlan::drops(42, 250_000); // 25% drops
        let run = || {
            let mut net = FaultyNetwork::new(LatencyMap::default(), Some(plan));
            (0..200)
                .map(|i| matches!(net.send(Tick(i), &req(i)).unwrap(), Delivery::Dropped))
                .collect::<Vec<bool>>()
        };
        let a = run();
        assert_eq!(a, run());
        let dropped = a.iter().filter(|&&d| d).count();
        assert!(dropped > 10 && dropped < 100, "25% of 200 ≈ 50, got {dropped}");
    }

    #[test]
    fn duplicates_arrive_in_order_and_delays_add() {
        let mut dup = FaultyNetwork::new(
            LatencyMap::default(),
            Some(FaultPlan { dup_ppm: 1_000_000, ..FaultPlan::drops(7, 0) }),
        );
        match dup.send(Tick(0), &req(1)).unwrap() {
            Delivery::Twice(a, b) => assert!(a < b),
            other => panic!("expected a duplicate, got {other:?}"),
        }
        assert_eq!(dup.fault_stats().get("faults.duplicated.RdBlk"), 1);

        let mut slow = FaultyNetwork::new(
            LatencyMap::default(),
            Some(FaultPlan { delay_ppm: 1_000_000, extra_delay: 500, ..FaultPlan::drops(7, 0) }),
        );
        let base = Tick(0) + LatencyMap::default().cache_dir;
        assert_eq!(slow.send(Tick(0), &req(1)).unwrap(), Delivery::Deliver(base + 500));
        assert_eq!(slow.fault_stats().get("faults.delayed"), 1);
    }

    #[test]
    fn immediate_delivery_flattens_latency_but_keeps_faults() {
        let mut net =
            FaultyNetwork::new(LatencyMap::default(), Some(FaultPlan::drop_first("Resp")));
        net.set_immediate_delivery(true);
        assert!(net.immediate_delivery());
        assert_eq!(net.send(Tick(40), &req(1)).unwrap(), Delivery::Deliver(Tick(40)));
        assert_eq!(net.send(Tick(41), &resp(1)).unwrap(), Delivery::Dropped);
        assert_eq!(net.faults_injected(), 1);
        // Traffic stats still count accepted messages.
        assert_eq!(net.network().stats().get("net.msg.RdBlk"), 1);

        let mut dup = FaultyNetwork::new(
            LatencyMap::default(),
            Some(FaultPlan { dup_ppm: 1_000_000, ..FaultPlan::drops(7, 0) }),
        );
        dup.set_immediate_delivery(true);
        assert_eq!(dup.send(Tick(9), &req(1)).unwrap(), Delivery::Twice(Tick(9), Tick(9)));
    }

    #[test]
    fn targets_filter_by_request_class() {
        let plan = FaultPlan::drops(3, 1_000_000).with_targets(FaultTargets::Requests);
        let mut net = FaultyNetwork::new(LatencyMap::default(), Some(plan));
        assert_eq!(net.send(Tick(0), &req(1)).unwrap(), Delivery::Dropped);
        // Responses are never requests, so they always deliver.
        assert!(matches!(net.send(Tick(1), &resp(1)).unwrap(), Delivery::Deliver(_)));
        // Wiring errors still surface through the fault layer.
        let bad = Message::new(
            AgentId::CorePairL2(0),
            AgentId::CorePairL2(1),
            LineAddr(0),
            MsgKind::RdBlk,
        );
        assert!(net.send(Tick(2), &bad).is_err());
    }
}
