use std::fmt;

/// A network endpoint in the heterogeneous memory system.
///
/// Matches the block diagram of the paper's Fig. 1: the system-level
/// directory services the CorePair L2s, the GPU TCC(s) and the DMA engine,
/// and owns the only (ordered) port to main memory. CPU cores, L1s, TCPs
/// and compute units are *internal* to their cluster models and never
/// appear on the system NoC.
///
/// # Examples
///
/// ```
/// use hsc_noc::AgentId;
///
/// let l2 = AgentId::CorePairL2(2);
/// assert!(l2.is_cpu_cache());
/// assert!(AgentId::Tcc(0).is_gpu_cache());
/// assert!(AgentId::Tcc(0).is_probe_target());
/// assert!(!AgentId::Dma.is_probe_target());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AgentId {
    /// The shared, inclusive L2 of CorePair `n` (two CPU cores each).
    CorePairL2(usize),
    /// The GPU's Texture Cache per Channel (L2) number `n`.
    Tcc(usize),
    /// The DMA engine.
    Dma,
    /// The system-level directory (co-located with the LLC).
    Directory,
    /// The main-memory controller, reachable only from the directory.
    Memory,
}

impl AgentId {
    /// Whether this agent is a CorePair L2 (a MOESI cache).
    #[must_use]
    pub fn is_cpu_cache(self) -> bool {
        matches!(self, AgentId::CorePairL2(_))
    }

    /// Whether this agent is a TCC (a VIPER cache).
    #[must_use]
    pub fn is_gpu_cache(self) -> bool {
        matches!(self, AgentId::Tcc(_))
    }

    /// Whether the directory may send probes to this agent.
    #[must_use]
    pub fn is_probe_target(self) -> bool {
        self.is_cpu_cache() || self.is_gpu_cache()
    }

    /// One-byte encoding for compact telemetry records (the flight
    /// recorder): 0 = DIR, 1 = MEM, 2 = DMA, 3+n = L2\[n\], 128+n =
    /// TCC\[n\]. Inverse of [`AgentId::from_flight_code`].
    ///
    /// # Panics
    ///
    /// Panics (via arithmetic overflow in debug builds) on cluster
    /// indices beyond the encoding's range (124 L2s / 127 TCCs) — far
    /// larger than any configuration the simulator models.
    #[must_use]
    pub fn flight_code(self) -> u8 {
        match self {
            AgentId::Directory => 0,
            AgentId::Memory => 1,
            AgentId::Dma => 2,
            AgentId::CorePairL2(n) => 3 + u8::try_from(n).expect("L2 index fits the encoding"),
            AgentId::Tcc(n) => 128 + u8::try_from(n).expect("TCC index fits the encoding"),
        }
    }

    /// Decodes [`AgentId::flight_code`].
    #[must_use]
    pub fn from_flight_code(code: u8) -> AgentId {
        match code {
            0 => AgentId::Directory,
            1 => AgentId::Memory,
            2 => AgentId::Dma,
            3..=127 => AgentId::CorePairL2(usize::from(code - 3)),
            _ => AgentId::Tcc(usize::from(code - 128)),
        }
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AgentId::CorePairL2(n) => write!(f, "L2[{n}]"),
            AgentId::Tcc(n) => write!(f, "TCC[{n}]"),
            AgentId::Dma => write!(f, "DMA"),
            AgentId::Directory => write!(f, "DIR"),
            AgentId::Memory => write!(f, "MEM"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_disjoint() {
        let agents = [
            AgentId::CorePairL2(0),
            AgentId::Tcc(0),
            AgentId::Dma,
            AgentId::Directory,
            AgentId::Memory,
        ];
        for a in agents {
            assert!(!(a.is_cpu_cache() && a.is_gpu_cache()));
        }
        assert!(AgentId::CorePairL2(3).is_probe_target());
        assert!(AgentId::Tcc(1).is_probe_target());
        assert!(!AgentId::Directory.is_probe_target());
        assert!(!AgentId::Memory.is_probe_target());
        assert!(!AgentId::Dma.is_probe_target());
    }

    #[test]
    fn display_names_are_compact() {
        assert_eq!(AgentId::CorePairL2(1).to_string(), "L2[1]");
        assert_eq!(AgentId::Tcc(0).to_string(), "TCC[0]");
        assert_eq!(AgentId::Dma.to_string(), "DMA");
    }

    #[test]
    fn flight_codes_round_trip() {
        let agents = [
            AgentId::Directory,
            AgentId::Memory,
            AgentId::Dma,
            AgentId::CorePairL2(0),
            AgentId::CorePairL2(7),
            AgentId::Tcc(0),
            AgentId::Tcc(3),
        ];
        for a in agents {
            assert_eq!(AgentId::from_flight_code(a.flight_code()), a, "{a}");
        }
    }

    #[test]
    fn ordering_allows_btreemap_keys() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(AgentId::Directory);
        s.insert(AgentId::CorePairL2(0));
        s.insert(AgentId::CorePairL2(1));
        assert_eq!(s.len(), 3);
    }
}
