use std::fmt;

use hsc_sim::{CounterId, Counters, StatSet, Tick};

use crate::{AgentId, ClassCounters, Message, MsgKind};

/// A message was sent between two agents that share no link in this
/// topology (every path goes through the directory).
///
/// Surfaced by `hsc_core::System::run` as `SimError::Wiring` instead of a
/// panic, so a mis-wired controller produces a diagnosable error value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WiringError {
    /// The sending agent.
    pub src: AgentId,
    /// The (unreachable) receiving agent.
    pub dst: AgentId,
}

impl fmt::Display for WiringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no direct link {}→{} in this topology", self.src, self.dst)
    }
}

impl std::error::Error for WiringError {}

/// One-way hop latencies of the system interconnect, in GPU cycles.
///
/// The network is contention-free with constant per-pair latency. Constant
/// latency plus the FIFO tie-breaking of `hsc_sim::WheelQueue` yields
/// point-to-point ordering, which both the MOESI and VIPER protocol
/// implementations rely on (e.g. a VicDirty is never overtaken by the
/// probe-ack sent after it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyMap {
    /// Hop between any cache/DMA agent and the directory.
    pub cache_dir: u64,
    /// Hop between the directory and the memory controller.
    pub dir_mem: u64,
}

impl Default for LatencyMap {
    /// 30 cycles cache↔directory, 10 cycles directory↔memory-controller
    /// (DRAM access time itself is modelled in the memory controller).
    fn default() -> Self {
        LatencyMap { cache_dir: 30, dir_mem: 10 }
    }
}

impl LatencyMap {
    /// One-way latency from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`WiringError`] on src/dst pairs that never communicate
    /// directly (e.g. L2→L2): in this topology every path goes through the
    /// directory, so such a message is a wiring bug.
    pub fn one_way(&self, src: AgentId, dst: AgentId) -> Result<u64, WiringError> {
        use AgentId::{Directory, Memory};
        match (src, dst) {
            (Directory, Memory) | (Memory, Directory) => Ok(self.dir_mem),
            (Directory, d) if d.is_probe_target() || d == AgentId::Dma => Ok(self.cache_dir),
            (s, Directory) if s.is_probe_target() || s == AgentId::Dma => Ok(self.cache_dir),
            (src, dst) => Err(WiringError { src, dst }),
        }
    }

    /// The minimum one-way latency over every edge of the topology: the
    /// conservative PDES lookahead when shard boundaries could cut *any*
    /// edge (the sharded engine's fault mode, where all sends are decided
    /// at the barrier).
    #[must_use]
    pub fn min_one_way(&self) -> u64 {
        self.cache_dir.min(self.dir_mem)
    }

    /// The minimum one-way latency over edges that cross between the
    /// cache/DMA side and the directory side — the edges a shard plan that
    /// keeps directory and memory together can cut. Every such edge is a
    /// cache↔directory hop in this star topology, so the lookahead is
    /// `cache_dir`.
    #[must_use]
    pub fn min_cross_one_way(&self) -> u64 {
        self.cache_dir
    }
}

/// The system interconnect: timestamps deliveries and counts every message
/// by class.
///
/// The paper's Figure 7 (probes sent out from the directory) and parts of
/// Figure 5 (directory↔memory reads/writes) are read off these counters at
/// the end of a run.
///
/// # Examples
///
/// ```
/// use hsc_mem::LineAddr;
/// use hsc_noc::{AgentId, LatencyMap, Message, MsgKind, Network};
/// use hsc_sim::Tick;
///
/// let mut net = Network::new(LatencyMap::default());
/// let m = Message::new(AgentId::CorePairL2(0), AgentId::Directory, LineAddr(1), MsgKind::RdBlk);
/// let arrive = net.send(Tick(100), &m).unwrap();
/// assert_eq!(arrive, Tick(130));
/// assert_eq!(net.stats().get("net.msg.RdBlk"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    latency: LatencyMap,
    counters: Counters,
    by_class: ClassCounters,
    probes_total: CounterId,
    mem_reads: CounterId,
    mem_writes: CounterId,
}

impl Network {
    /// Creates a network with the given latencies.
    #[must_use]
    pub fn new(latency: LatencyMap) -> Self {
        let mut counters = Counters::new();
        let by_class = ClassCounters::register_hidden(&mut counters, "net.msg");
        let probes_total = counters.register("net.probes_total");
        let mem_reads = counters.register("net.mem_reads");
        let mem_writes = counters.register("net.mem_writes");
        Network { latency, counters, by_class, probes_total, mem_reads, mem_writes }
    }

    /// Accepts `msg` at time `now`; returns its delivery time and records
    /// traffic statistics.
    ///
    /// # Errors
    ///
    /// Returns [`WiringError`] when no link exists between `msg.src` and
    /// `msg.dst`; nothing is counted in that case.
    pub fn send(&mut self, now: Tick, msg: &Message) -> Result<Tick, WiringError> {
        let lat = self.latency.one_way(msg.src, msg.dst)?;
        self.count(msg);
        Ok(now + lat)
    }

    fn count(&mut self, msg: &Message) {
        self.counters.bump(self.by_class.id(&msg.kind));
        if msg.kind.is_probe() {
            self.counters.bump(self.probes_total);
        }
        match msg.kind {
            MsgKind::MemRd => self.counters.bump(self.mem_reads),
            MsgKind::MemWr { .. } => self.counters.bump(self.mem_writes),
            _ => {}
        }
    }

    /// Traffic counters exported for reports: `net.msg.<Class>`,
    /// `net.probes_total`, `net.mem_reads`, `net.mem_writes`.
    #[must_use]
    pub fn stats(&self) -> StatSet {
        self.counters.export()
    }

    /// Total messages accepted, all classes — the dense-array replacement
    /// for summing the exported `net.msg.*` keys (the per-epoch sampler
    /// reads this every boundary).
    #[must_use]
    pub fn messages_total(&self) -> u64 {
        self.by_class.total(&self.counters)
    }

    /// Total probes the directory has sent.
    #[must_use]
    pub fn probes_sent(&self) -> u64 {
        self.counters.get(self.probes_total)
    }

    /// Total directory→memory reads.
    #[must_use]
    pub fn mem_reads(&self) -> u64 {
        self.counters.get(self.mem_reads)
    }

    /// Total directory→memory writes.
    #[must_use]
    pub fn mem_writes(&self) -> u64 {
        self.counters.get(self.mem_writes)
    }

    /// The configured latencies.
    #[must_use]
    pub fn latency_map(&self) -> LatencyMap {
        self.latency
    }

    /// Adds another network's traffic counters into this one. The sharded
    /// run engine counts each shard's local traffic on a private clone and
    /// folds the clones back here at the end of the run; clones share one
    /// registration order, so the fold is an index-wise sum.
    pub fn absorb(&mut self, other: &Network) {
        self.counters.absorb(&other.counters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProbeKind;
    use hsc_mem::{LineAddr, LineData};

    fn msg(src: AgentId, dst: AgentId, kind: MsgKind) -> Message {
        Message::new(src, dst, LineAddr(0), kind)
    }

    #[test]
    fn latency_is_per_pair() {
        let l = LatencyMap { cache_dir: 7, dir_mem: 3 };
        assert_eq!(l.one_way(AgentId::CorePairL2(0), AgentId::Directory), Ok(7));
        assert_eq!(l.one_way(AgentId::Directory, AgentId::Tcc(0)), Ok(7));
        assert_eq!(l.one_way(AgentId::Dma, AgentId::Directory), Ok(7));
        assert_eq!(l.one_way(AgentId::Directory, AgentId::Memory), Ok(3));
        assert_eq!(l.one_way(AgentId::Memory, AgentId::Directory), Ok(3));
    }

    #[test]
    fn cache_to_cache_is_a_wiring_error() {
        let l = LatencyMap::default();
        let err = l.one_way(AgentId::CorePairL2(0), AgentId::CorePairL2(1)).unwrap_err();
        assert_eq!(err.src, AgentId::CorePairL2(0));
        assert_eq!(err.dst, AgentId::CorePairL2(1));
        assert!(err.to_string().contains("no direct link"));
        // A mis-wired send counts nothing.
        let mut net = Network::new(l);
        assert!(net
            .send(Tick(0), &msg(AgentId::CorePairL2(0), AgentId::CorePairL2(1), MsgKind::RdBlk))
            .is_err());
        assert_eq!(net.stats().get("net.msg.RdBlk"), 0);
    }

    #[test]
    fn send_timestamps_with_one_way_latency() {
        let mut net = Network::new(LatencyMap { cache_dir: 5, dir_mem: 2 });
        let t = net.send(Tick(10), &msg(AgentId::Directory, AgentId::Memory, MsgKind::MemRd));
        assert_eq!(t, Ok(Tick(12)));
    }

    #[test]
    fn probe_counter_aggregates_both_kinds() {
        let mut net = Network::new(LatencyMap::default());
        for kind in [ProbeKind::Invalidate, ProbeKind::Downgrade] {
            net.send(
                Tick(0),
                &msg(AgentId::Directory, AgentId::CorePairL2(0), MsgKind::Probe { kind }),
            )
            .unwrap();
        }
        assert_eq!(net.probes_sent(), 2);
        assert_eq!(net.stats().get("net.msg.PrbInv"), 1);
        assert_eq!(net.stats().get("net.msg.PrbDown"), 1);
    }

    #[test]
    fn memory_traffic_counters_split_reads_and_writes() {
        let mut net = Network::new(LatencyMap::default());
        net.send(Tick(0), &msg(AgentId::Directory, AgentId::Memory, MsgKind::MemRd)).unwrap();
        net.send(
            Tick(0),
            &msg(
                AgentId::Directory,
                AgentId::Memory,
                MsgKind::MemWr { data: LineData::zeroed(), mask: crate::WordMask::full() },
            ),
        )
        .unwrap();
        net.send(
            Tick(0),
            &msg(
                AgentId::Memory,
                AgentId::Directory,
                MsgKind::MemRdResp { data: LineData::zeroed() },
            ),
        )
        .unwrap();
        assert_eq!(net.mem_reads(), 1);
        assert_eq!(net.mem_writes(), 1);
        assert_eq!(net.stats().get("net.msg.MemRdResp"), 1);
    }

    #[test]
    fn fifo_ordering_holds_for_constant_latency() {
        // Two messages on the same pair sent at t and t+1 arrive in order.
        let mut net = Network::new(LatencyMap::default());
        let a = net
            .send(Tick(0), &msg(AgentId::CorePairL2(0), AgentId::Directory, MsgKind::RdBlk))
            .unwrap();
        let b = net
            .send(Tick(1), &msg(AgentId::CorePairL2(0), AgentId::Directory, MsgKind::Unblock))
            .unwrap();
        assert!(a < b);
    }
}
