use std::fmt;

use hsc_mem::{AtomicKind, LineAddr, LineData, WORDS_PER_LINE};

use crate::AgentId;

/// Which permission a directory response grants the requester.
///
/// MOESI L2s use all three; VIPER TCCs ignore `Exclusive` grants (paper
/// §II-A: "if exclusive status is granted, it is ignored by the TCC").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grant {
    /// Read permission, other copies may exist.
    Shared,
    /// Read permission, no other copy exists; may silently upgrade to
    /// Modified in a MOESI L2.
    Exclusive,
    /// Write permission.
    Modified,
}

impl fmt::Display for Grant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Grant::Shared => "S",
            Grant::Exclusive => "E",
            Grant::Modified => "M",
        };
        f.write_str(s)
    }
}

/// The two probe flavours the directory can broadcast or multicast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProbeKind {
    /// Sent for write-permission requests (RdBlkM, WT, Atomic, DMAWr):
    /// recipients must invalidate, forwarding dirty data if they have it
    /// (TCCs invalidate without forwarding).
    Invalidate,
    /// Sent for read-permission requests (RdBlk, RdBlkS, DMARd):
    /// recipients downgrade M→O / E→S and forward dirty data.
    Downgrade,
}

impl fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProbeKind::Invalidate => "PrbInv",
            ProbeKind::Downgrade => "PrbDown",
        };
        f.write_str(s)
    }
}

/// A bitmask selecting 64-bit words within one cache line.
///
/// GPU write-throughs write only the words a wavefront actually stored;
/// the directory merges them into the LLC/memory copy under this mask.
///
/// # Examples
///
/// ```
/// use hsc_noc::WordMask;
///
/// let mut m = WordMask::empty();
/// m.set(0);
/// m.set(7);
/// assert!(m.contains(0) && m.contains(7) && !m.contains(3));
/// assert_eq!(WordMask::full().count(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct WordMask(u8);

impl WordMask {
    /// No words selected.
    #[must_use]
    pub fn empty() -> Self {
        WordMask(0)
    }

    /// All eight words selected (a full-line write).
    #[must_use]
    pub fn full() -> Self {
        WordMask(0xFF)
    }

    /// A mask with only word `i` selected.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn single(i: usize) -> Self {
        let mut m = WordMask::empty();
        m.set(i);
        m
    }

    /// Selects word `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn set(&mut self, i: usize) {
        assert!(i < WORDS_PER_LINE, "word index {i} out of line");
        self.0 |= 1 << i;
    }

    /// Whether word `i` is selected.
    #[must_use]
    pub fn contains(self, i: usize) -> bool {
        i < WORDS_PER_LINE && self.0 & (1 << i) != 0
    }

    /// Number of selected words.
    #[must_use]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no word is selected.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Unions another mask into this one.
    pub fn union(&mut self, other: WordMask) {
        self.0 |= other.0;
    }

    /// Copies the selected words of `src` into `dst`.
    pub fn apply(self, dst: &mut LineData, src: &LineData) {
        for i in 0..WORDS_PER_LINE {
            if self.contains(i) {
                dst.set_word(i, src.word(i));
            }
        }
    }
}

/// Every message class that crosses the system NoC, with its payload.
///
/// The naming follows §II of the paper exactly; see the table in the
/// module docs of [`crate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    // ---- requests to the directory ----
    /// Read-permission request; may be granted Shared or Exclusive.
    RdBlk,
    /// Read-permission request for Shared only (I-cache misses).
    RdBlkS,
    /// Write-permission request.
    RdBlkM,
    /// Dirty victim write-back from an L2.
    VicDirty {
        /// The modified line contents.
        data: LineData,
    },
    /// Clean victim notification from an L2 (noisy evictions, §II-D).
    VicClean {
        /// The (memory-coherent) line contents.
        data: LineData,
    },
    /// GPU write-through — also the TCC's write-back path when it is
    /// configured as a write-back cache (§II-A).
    WriteThrough {
        /// The written words.
        data: LineData,
        /// Which words were written.
        mask: WordMask,
        /// Whether the sending TCC still holds a valid copy afterwards
        /// (lets the state-tracking directory keep its sharer set exact).
        retains: bool,
    },
    /// System-Level-Coherent atomic, executed at the directory.
    AtomicReq {
        /// Word within the line to operate on.
        word: u8,
        /// The read-modify-write operation.
        op: AtomicKind,
    },
    /// TCP flush (orchestrated by the TCC) supporting store-release.
    Flush,
    /// DMA read of a full line.
    DmaRd,
    /// DMA write of (part of) a line.
    DmaWr {
        /// The written words.
        data: LineData,
        /// Which words were written.
        mask: WordMask,
    },

    // ---- directory to caches ----
    /// A coherence probe.
    Probe {
        /// Invalidating or downgrading.
        kind: ProbeKind,
    },

    // ---- caches to directory ----
    /// Probe acknowledgment.
    ProbeAck {
        /// Forwarded dirty line, if the cache held it M/O.
        dirty: Option<LineData>,
        /// Whether the cache had any copy (for sharer-count sanity checks).
        had_copy: bool,
        /// Whether an invalidating probe consumed a *parked victim* (a
        /// line whose VicDirty/VicClean is still in flight). The directory
        /// then treats that in-flight victim message as stale and drops
        /// its write, closing the writeback/probe race.
        was_parked: bool,
    },

    // ---- directory to requesters ----
    /// Data + permission response ending the miss.
    Resp {
        /// The line contents.
        data: LineData,
        /// Granted permission.
        grant: Grant,
    },
    /// Write permission granted without data, sent by the state-tracking
    /// directory when the requester of an RdBlkM is already the owner (its
    /// copy is the freshest in the system, so no data transfer is needed).
    UpgradeAck,
    /// Acknowledgment of a VicDirty/VicClean; releases the victim buffer.
    VicAck,
    /// Acknowledgment that a write-through reached system visibility.
    WtAck,
    /// Result of an SLC atomic (the *old* word value).
    AtomicResp {
        /// Value of the word before the operation.
        old: u64,
    },
    /// Acknowledgment of a Flush.
    FlushAck,
    /// DMA read completion.
    DmaRdResp {
        /// The line contents.
        data: LineData,
    },
    /// DMA write completion.
    DmaWrAck,

    // ---- requester to directory ----
    /// Ends a coherence transaction; the directory unblocks the line.
    Unblock,

    // ---- directory to/from memory ----
    /// Memory read request.
    MemRd,
    /// Memory write request.
    MemWr {
        /// The line contents to store.
        data: LineData,
        /// Which words to store (DRAM byte enables; full for line writes).
        mask: WordMask,
    },
    /// Memory read completion.
    MemRdResp {
        /// The line contents.
        data: LineData,
    },
}

impl MsgKind {
    /// Number of distinct statistics classes (the two probe kinds count
    /// separately). [`MsgKind::class_index`] is always below this.
    pub const NUM_CLASSES: usize = 25;

    /// Class names indexed by [`MsgKind::class_index`].
    pub const CLASS_NAMES: [&'static str; MsgKind::NUM_CLASSES] = [
        "RdBlk",
        "RdBlkS",
        "RdBlkM",
        "VicDirty",
        "VicClean",
        "WT",
        "Atomic",
        "Flush",
        "DmaRd",
        "DmaWr",
        "PrbInv",
        "PrbDown",
        "PrbAck",
        "Resp",
        "UpgradeAck",
        "VicAck",
        "WtAck",
        "AtomicResp",
        "FlushAck",
        "DmaRdResp",
        "DmaWrAck",
        "Unblock",
        "MemRd",
        "MemWr",
        "MemRdResp",
    ];

    /// Dense index of this message's statistics class, in
    /// `0..`[`MsgKind::NUM_CLASSES`]. Hot counter paths use this to index
    /// pre-interned per-class counter arrays instead of formatting a
    /// string key per message.
    #[must_use]
    #[inline]
    pub fn class_index(&self) -> usize {
        match self {
            MsgKind::RdBlk => 0,
            MsgKind::RdBlkS => 1,
            MsgKind::RdBlkM => 2,
            MsgKind::VicDirty { .. } => 3,
            MsgKind::VicClean { .. } => 4,
            MsgKind::WriteThrough { .. } => 5,
            MsgKind::AtomicReq { .. } => 6,
            MsgKind::Flush => 7,
            MsgKind::DmaRd => 8,
            MsgKind::DmaWr { .. } => 9,
            MsgKind::Probe { kind: ProbeKind::Invalidate } => 10,
            MsgKind::Probe { kind: ProbeKind::Downgrade } => 11,
            MsgKind::ProbeAck { .. } => 12,
            MsgKind::Resp { .. } => 13,
            MsgKind::UpgradeAck => 14,
            MsgKind::VicAck => 15,
            MsgKind::WtAck => 16,
            MsgKind::AtomicResp { .. } => 17,
            MsgKind::FlushAck => 18,
            MsgKind::DmaRdResp { .. } => 19,
            MsgKind::DmaWrAck => 20,
            MsgKind::Unblock => 21,
            MsgKind::MemRd => 22,
            MsgKind::MemWr { .. } => 23,
            MsgKind::MemRdResp { .. } => 24,
        }
    }

    /// A short stable name used as the statistics key for this class.
    #[must_use]
    pub fn class_name(&self) -> &'static str {
        MsgKind::CLASS_NAMES[self.class_index()]
    }

    /// Whether this is one of the directory-bound request classes.
    #[must_use]
    pub fn is_dir_request(&self) -> bool {
        matches!(
            self,
            MsgKind::RdBlk
                | MsgKind::RdBlkS
                | MsgKind::RdBlkM
                | MsgKind::VicDirty { .. }
                | MsgKind::VicClean { .. }
                | MsgKind::WriteThrough { .. }
                | MsgKind::AtomicReq { .. }
                | MsgKind::Flush
                | MsgKind::DmaRd
                | MsgKind::DmaWr { .. }
        )
    }

    /// Whether this is a probe.
    #[must_use]
    pub fn is_probe(&self) -> bool {
        matches!(self, MsgKind::Probe { .. })
    }

    /// Whether this class terminates a requester's transaction: the
    /// directory's (or memory's, for DMA) final answer to one of the
    /// [`MsgKind::is_dir_request`] classes. The observability layer closes
    /// a transaction span when one of these is delivered.
    #[must_use]
    pub fn is_requester_completion(&self) -> bool {
        matches!(
            self,
            MsgKind::Resp { .. }
                | MsgKind::UpgradeAck
                | MsgKind::VicAck
                | MsgKind::WtAck
                | MsgKind::AtomicResp { .. }
                | MsgKind::FlushAck
                | MsgKind::DmaRdResp { .. }
                | MsgKind::DmaWrAck
        )
    }

    /// Whether this request class needs *invalidating* probes (the paper's
    /// write-permission set: RdBlkM, WT, Atomic, DMAWr).
    #[must_use]
    pub fn wants_invalidating_probes(&self) -> bool {
        matches!(
            self,
            MsgKind::RdBlkM
                | MsgKind::WriteThrough { .. }
                | MsgKind::AtomicReq { .. }
                | MsgKind::DmaWr { .. }
        )
    }
}

/// One message in flight on the system NoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    /// Sender.
    pub src: AgentId,
    /// Receiver.
    pub dst: AgentId,
    /// The cache line the message concerns.
    pub line: LineAddr,
    /// Class and payload.
    pub kind: MsgKind,
}

impl Message {
    /// Builds a message.
    #[must_use]
    pub fn new(src: AgentId, dst: AgentId, line: LineAddr, kind: MsgKind) -> Self {
        Message { src, dst, line, kind }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{} {} {}", self.src, self.dst, self.kind.class_name(), self.line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_mask_set_and_query() {
        let mut m = WordMask::empty();
        assert!(m.is_empty());
        m.set(3);
        m.set(5);
        assert!(m.contains(3) && m.contains(5));
        assert!(!m.contains(0));
        assert_eq!(m.count(), 2);
        assert!(!m.contains(8), "out-of-range query is false, not panic");
    }

    #[test]
    fn word_mask_union_and_apply() {
        let mut dst = LineData::from_words([0; 8]);
        let src = LineData::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        let mut m = WordMask::single(1);
        m.union(WordMask::single(6));
        m.apply(&mut dst, &src);
        assert_eq!(*dst.words(), [0, 2, 0, 0, 0, 0, 7, 0]);
    }

    #[test]
    #[should_panic(expected = "out of line")]
    fn word_mask_set_bounds_checked() {
        WordMask::empty().set(8);
    }

    #[test]
    fn full_mask_overwrites_line() {
        let mut dst = LineData::from_words([9; 8]);
        let src = LineData::from_words([1, 2, 3, 4, 5, 6, 7, 8]);
        WordMask::full().apply(&mut dst, &src);
        assert_eq!(dst, src);
    }

    #[test]
    fn class_names_are_unique() {
        use std::collections::BTreeSet;
        let kinds = [
            MsgKind::RdBlk,
            MsgKind::RdBlkS,
            MsgKind::RdBlkM,
            MsgKind::VicDirty { data: LineData::zeroed() },
            MsgKind::VicClean { data: LineData::zeroed() },
            MsgKind::WriteThrough {
                data: LineData::zeroed(),
                mask: WordMask::full(),
                retains: true,
            },
            MsgKind::AtomicReq { word: 0, op: AtomicKind::FetchAdd(1) },
            MsgKind::Flush,
            MsgKind::DmaRd,
            MsgKind::DmaWr { data: LineData::zeroed(), mask: WordMask::full() },
            MsgKind::Probe { kind: ProbeKind::Invalidate },
            MsgKind::Probe { kind: ProbeKind::Downgrade },
            MsgKind::ProbeAck { dirty: None, had_copy: false, was_parked: false },
            MsgKind::Resp { data: LineData::zeroed(), grant: Grant::Shared },
            MsgKind::UpgradeAck,
            MsgKind::VicAck,
            MsgKind::WtAck,
            MsgKind::AtomicResp { old: 0 },
            MsgKind::FlushAck,
            MsgKind::DmaRdResp { data: LineData::zeroed() },
            MsgKind::DmaWrAck,
            MsgKind::Unblock,
            MsgKind::MemRd,
            MsgKind::MemWr { data: LineData::zeroed(), mask: WordMask::full() },
            MsgKind::MemRdResp { data: LineData::zeroed() },
        ];
        let names: BTreeSet<&str> = kinds.iter().map(|k| k.class_name()).collect();
        assert_eq!(names.len(), kinds.len(), "duplicate class name");
        assert_eq!(kinds.len(), MsgKind::NUM_CLASSES, "class count drifted");
        for (i, kind) in kinds.iter().enumerate() {
            assert_eq!(kind.class_index(), i, "class_index order drifted for {kind:?}");
            assert_eq!(kind.class_name(), MsgKind::CLASS_NAMES[i]);
        }
    }

    #[test]
    fn request_and_probe_classification() {
        assert!(MsgKind::RdBlk.is_dir_request());
        assert!(MsgKind::DmaRd.is_dir_request());
        assert!(!MsgKind::Unblock.is_dir_request());
        assert!(MsgKind::Probe { kind: ProbeKind::Downgrade }.is_probe());
        assert!(!MsgKind::RdBlk.is_probe());
    }

    #[test]
    fn completion_classes_answer_requests_only() {
        assert!(MsgKind::Resp { data: LineData::zeroed(), grant: Grant::Shared }
            .is_requester_completion());
        assert!(MsgKind::VicAck.is_requester_completion());
        assert!(MsgKind::FlushAck.is_requester_completion());
        assert!(MsgKind::DmaWrAck.is_requester_completion());
        assert!(!MsgKind::RdBlk.is_requester_completion());
        assert!(!MsgKind::Unblock.is_requester_completion());
        assert!(!MsgKind::MemRdResp { data: LineData::zeroed() }.is_requester_completion());
        assert!(!MsgKind::ProbeAck { dirty: None, had_copy: false, was_parked: false }
            .is_requester_completion());
    }

    #[test]
    fn write_permission_requests_want_invalidating_probes() {
        assert!(MsgKind::RdBlkM.wants_invalidating_probes());
        assert!(
            MsgKind::AtomicReq { word: 0, op: AtomicKind::FetchAdd(1) }.wants_invalidating_probes()
        );
        assert!(MsgKind::DmaWr { data: LineData::zeroed(), mask: WordMask::full() }
            .wants_invalidating_probes());
        assert!(MsgKind::WriteThrough {
            data: LineData::zeroed(),
            mask: WordMask::full(),
            retains: true
        }
        .wants_invalidating_probes());
        assert!(!MsgKind::RdBlk.wants_invalidating_probes());
        assert!(!MsgKind::RdBlkS.wants_invalidating_probes());
        assert!(!MsgKind::DmaRd.wants_invalidating_probes());
    }

    #[test]
    fn message_display_mentions_endpoints_and_class() {
        let m =
            Message::new(AgentId::CorePairL2(0), AgentId::Directory, LineAddr(4), MsgKind::RdBlkM);
        let s = m.to_string();
        assert!(s.contains("L2[0]"));
        assert!(s.contains("DIR"));
        assert!(s.contains("RdBlkM"));
    }

    #[test]
    fn grants_display_single_letters() {
        assert_eq!(Grant::Shared.to_string(), "S");
        assert_eq!(Grant::Exclusive.to_string(), "E");
        assert_eq!(Grant::Modified.to_string(), "M");
    }
}
