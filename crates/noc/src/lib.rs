//! Protocol message vocabulary and interconnect model for the HSC
//! reproduction.
//!
//! The paper's system (Fig. 1) connects four kinds of agents to the
//! system-level directory: CorePair L2 controllers, the GPU's TCC(s), the
//! DMA engine, and (through an ordered port) main memory. This crate
//! defines:
//!
//! * [`AgentId`] — the network endpoints,
//! * [`Message`] / [`MsgKind`] — every request, probe, acknowledgment and
//!   response named in §II of the paper (RdBlk, RdBlkS, RdBlkM, VicDirty,
//!   VicClean, WT, Atomic, Flush, DMARd, DMAWr, probes, unblocks, …),
//! * [`Network`] — a fixed-per-hop-latency interconnect that timestamps
//!   deliveries and counts traffic by message class. Together with the
//!   FIFO tie-breaking of `hsc_sim::WheelQueue`, constant per-pair latency
//!   gives point-to-point ordering, which the protocols rely on.
//!
//! Figure 7 of the paper ("% reduction in probes sent out from the
//! directory") is read directly off [`Network`]'s counters.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod actions;
mod agent;
mod classctr;
mod fault;
mod message;
mod network;
mod retry;

pub use actions::{Action, Outbox};
pub use agent::AgentId;
pub use classctr::ClassCounters;
pub use fault::{Delivery, FaultPlan, FaultTargets, FaultyNetwork};
pub use message::{Grant, Message, MsgKind, ProbeKind, WordMask};
pub use network::{LatencyMap, Network, WiringError};
pub use retry::{RetryPolicy, RetryTracker};
