//! End-to-end proof that the checker catches a real protocol bug: a
//! seeded MOESI mutation (an owner's probe response "forgets" to forward
//! its dirty data — `hsc_cluster::mutation`) must produce a minimized
//! counterexample naming the violating interleaving.
//!
//! This lives in its own integration-test file **on purpose**: the
//! mutation switch is process-global, and a separate file gets a separate
//! test process, so flipping it cannot poison concurrently running tests.

#![cfg(debug_assertions)]

use hsc_check::litmus::Litmus;
use hsc_check::{CheckConfig, ViolationKind};
use hsc_cluster::mutation;

/// Clears the mutation on every exit path, including assertion panics.
struct ResetMutation;

impl Drop for ResetMutation {
    fn drop(&mut self) {
        mutation::set_drop_dirty_probe_data(false);
    }
}

#[test]
fn seeded_moesi_mutation_yields_a_minimized_counterexample() {
    let _guard = ResetMutation;

    // Sanity: the unmutated protocol survives exhaustive exploration.
    let l = Litmus::by_name("two_writers").expect("catalog scenario");
    let clean = l.check_exhaustive(&CheckConfig::default());
    assert!(clean.passed(), "two_writers must pass without the mutation");

    mutation::set_drop_dirty_probe_data(true);
    let mutated = l.check_exhaustive(&CheckConfig::default());
    let cx = mutated.counterexample().expect("the lost dirty forward must be caught");

    assert!(cx.minimized, "the BFS pass must have shortened the DFS witness");
    assert!(
        matches!(cx.kind, ViolationKind::FinalState | ViolationKind::ValueCoherence),
        "a dropped dirty forward loses a store: got {:?}",
        cx.kind
    );
    assert!(!cx.steps.is_empty(), "the violating interleaving must be named");
    // The witness must actually show the racing ownership transfer: the
    // second writer's RdBlkM reaching the directory.
    let rendered = cx.to_string();
    assert!(
        rendered.contains("RdBlkM"),
        "counterexample must name the protocol events:\n{rendered}"
    );
    // And it replays: the choices drive a fresh system into the same
    // violation (render_path already did; spot-check the Perfetto export).
    assert_eq!(cx.to_perfetto().len(), cx.steps.len() + 1 + cx.flight.len());
    // The replayed flight tail names the deliveries leading to the
    // violation, so the rendering ends with a post-mortem.
    assert!(!cx.flight.is_empty(), "deliveries happened, so the tail must too");
    assert!(rendered.contains("flight recorder ("), "rendering carries the tail:\n{rendered}");
}
