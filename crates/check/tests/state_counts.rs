//! Pins the exhaustively-explored state-space size of every catalog
//! scenario to golden values.
//!
//! These counts were captured on the binary-heap `EventQueue` engine and
//! re-verified after the `WheelQueue` swap: the event queue is part of
//! the explored state (choice-mode stepping enumerates its pending set,
//! and `state_hash` folds the pending multiset into each state's
//! identity), so an engine change that perturbed pending-set enumeration
//! or hashing would show up here as a different distinct-state count —
//! before it could silently change which interleavings the checker
//! explores or how counterexamples minimize.

use hsc_check::litmus::Litmus;
use hsc_check::CheckConfig;

/// `(states, terminal_states)` for one explored mode.
type Counts = Option<(u64, u64)>;

/// `(scenario, fault-free (states, terminal), faulty (states, terminal))`.
/// A `None` column means the scenario does not run that mode.
const GOLDEN: [(&str, Counts, Counts); 7] = [
    ("two_writers", Some((960, 2)), None),
    ("victim_vs_probe", Some((9220, 3)), Some((5508, 3))),
    ("dup_reply", Some((960, 2)), Some((1888, 2))),
    ("atomic_vs_eviction", Some((8484, 4)), None),
    ("dma_vs_dirty_l2", Some((1620, 2)), None),
    ("slc_atomic_vs_probe", Some((1156, 2)), None),
    ("retry_storm", None, None),
];

#[test]
fn exhaustive_state_counts_match_golden() {
    let catalog = Litmus::catalog();
    assert_eq!(
        catalog.len(),
        GOLDEN.len(),
        "catalog gained or lost a scenario; update the golden table"
    );
    for (name, fault_free, faulty) in GOLDEN {
        let l = Litmus::by_name(name).expect("golden scenario must exist in the catalog");
        if fault_free.is_none() {
            assert!(!l.exhaustive, "{name}: golden says non-exhaustive");
            continue;
        }
        let report = l.check_exhaustive(&CheckConfig::default());
        assert!(report.passed(), "{name}: exhaustive exploration must pass");
        let got_free = report.fault_free.as_ref().map(|r| (r.states, r.terminal_states));
        assert_eq!(got_free, fault_free, "{name}: fault-free distinct-state count drifted");
        let got_faulty = report.faulty.as_ref().map(|r| (r.states, r.terminal_states));
        assert_eq!(got_faulty, faulty, "{name}: faulty distinct-state count drifted");
        for r in report.fault_free.iter().chain(report.faulty.iter()) {
            assert!(!r.truncated, "{name}: golden counts assume untruncated exploration");
        }
    }
}
