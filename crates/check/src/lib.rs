//! Exhaustive protocol state-space explorer and litmus harness.
//!
//! The simulator proper (`hsc-core`) runs one *timed* interleaving per
//! seed: deterministic, fast, and blind to orderings its latency model
//! never produces. This crate closes that gap for tiny configurations
//! (2–3 agents, 1–2 cache lines, programs of a handful of ops) by
//! enumerating **every** legal delivery order of the pending events via
//! [`System::step_choice`] and asserting protocol invariants at each
//! reached state:
//!
//! * **SWMR** — a settled line never has two writable copies, nor a
//!   writable copy alongside stale readers;
//! * **value coherence** — all settled copies of a line agree, and clean
//!   copies match the freshest backing store (LLC, then memory);
//! * **no stuck states** — the only state with nothing left to deliver is
//!   clean completion (unless a fault scenario explicitly expects loss).
//!
//! States are deduplicated with the time-abstracted
//! [`System::state_hash`], so interleavings that differ only in *when*
//! (not *in what order*) things happened collapse, keeping exploration
//! tractable. When a violation is found, a breadth-first pass over the
//! same choice DAG produces a **minimized counterexample**: the shortest
//! event sequence reaching any violating state, printable as a numbered
//! event list and exportable as a Perfetto trace.
//!
//! The [`litmus`] module packages the directed race scenarios (victim
//! vs. probe, duplicated reply, DMA vs. dirty L2, …) that PR 1's fault
//! campaigns probed statistically, now checked exhaustively.
//!
//! # Examples
//!
//! ```
//! use hsc_check::{explore, litmus, CheckConfig};
//! use hsc_core::SystemBuilder;
//!
//! // An empty system completes from every delivery order of its
//! // initial wake-ups: one terminal state, no violations.
//! let report = explore(
//!     &|| SystemBuilder::new(litmus::tiny_config()).build(),
//!     &CheckConfig::default(),
//! );
//! assert!(report.counterexample.is_none());
//! assert_eq!(report.terminal_states, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, HashSet};
use std::fmt;

use hsc_mem::{LineAddr, LineData};
use hsc_obs::PerfettoTrace;
use hsc_sim::{FlightEntry, PendingKind, Tick};

use hsc_cluster::MoesiState;
use hsc_core::System;

pub mod litmus;

/// A function producing a fresh [`System`] in its initial state. The
/// explorer rebuilds and replays instead of cloning (a `System` owns
/// boxed programs and tracers), so construction must be deterministic.
pub type BuildFn<'a> = &'a dyn Fn() -> System;

/// A predicate over a cleanly completed system: `Err(reason)` marks the
/// final state as a violation (e.g. "a store was lost").
pub type FinalCheck = fn(&System) -> Result<(), String>;

/// Exploration limits and expectations.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Stop after this many *distinct* states (truncates, not fails).
    pub max_states: u64,
    /// Do not explore interleavings longer than this many events.
    pub max_depth: usize,
    /// A state with no deliverable events but unfinished work is normally
    /// a stuck-state violation; scenarios that inject message loss with
    /// retries off set this to accept the resulting stall as an outcome.
    pub deadlock_ok: bool,
    /// Predicate applied to every cleanly completed terminal state.
    pub final_check: Option<FinalCheck>,
    /// After finding a violation, run the breadth-first minimizer to
    /// report the *shortest* violating event sequence instead of the
    /// DFS path that happened to find it first.
    pub minimize: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 2_000_000,
            max_depth: 256,
            deadlock_ok: false,
            final_check: None,
            minimize: true,
        }
    }
}

/// What a counterexample violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two writable copies, or a writable copy alongside other readers.
    Swmr,
    /// Copies of a settled line disagree, or clean copies diverge from
    /// the freshest backing store.
    ValueCoherence,
    /// No deliverable events left but some agent still has work.
    Stuck,
    /// A cleanly completed run failed the scenario's final-state check.
    FinalState,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::Swmr => "SWMR",
            ViolationKind::ValueCoherence => "value-coherence",
            ViolationKind::Stuck => "stuck-state",
            ViolationKind::FinalState => "final-state",
        })
    }
}

/// A violating interleaving: the event sequence (one rendered
/// [`hsc_sim::PendingEvent`] per step, in delivery order) that drives a
/// fresh system into the violation.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Human-readable specifics ("line 0x1000: 2 writable copies", …).
    pub detail: String,
    /// The choice indices to replay via [`System::step_choice`].
    pub choices: Vec<usize>,
    /// The chosen events, rendered at the moment each was delivered.
    pub steps: Vec<String>,
    /// Whether the minimizer produced this (shortest known) or it is the
    /// raw DFS path.
    pub minimized: bool,
    /// The replayed system's flight-recorder tail at the violating state:
    /// the last delivered messages (tick, destination, class, line),
    /// oldest first — the post-mortem view the steps list abstracts.
    pub flight: Vec<FlightEntry>,
}

impl Counterexample {
    /// The counterexample as a Perfetto trace: one instant event per
    /// delivery, on a single `counterexample` track, timestamped by step
    /// index so the viewer shows the order, not the (abstracted) time.
    #[must_use]
    pub fn to_perfetto(&self) -> PerfettoTrace {
        let mut t = PerfettoTrace::new();
        for (i, s) in self.steps.iter().enumerate() {
            t.instant("counterexample", s, "check", Tick(i as u64));
        }
        t.instant(
            "counterexample",
            &format!("{}: {}", self.kind, self.detail),
            "violation",
            Tick(self.steps.len() as u64),
        );
        // The flight tail keeps its own (real-tick) track: the
        // counterexample track is ordered by step index, the flight track
        // by simulated time.
        t.append_flight_tail(&self.flight);
        t
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} violation after {} event(s){}: {}",
            self.kind,
            self.steps.len(),
            if self.minimized { " (minimized)" } else { "" },
            self.detail
        )?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {:>3}. {s}", i + 1)?;
        }
        if !self.flight.is_empty() {
            writeln!(
                f,
                "  flight recorder ({} delivered event(s), oldest first):",
                self.flight.len()
            )?;
            for e in &self.flight {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

/// What an exhaustive exploration found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Distinct (time-abstracted) states reached.
    pub states: u64,
    /// States with nothing left to deliver and all work done.
    pub terminal_states: u64,
    /// Longest interleaving explored, in events.
    pub deepest: usize,
    /// Whether `max_states`/`max_depth` cut the exploration short.
    pub truncated: bool,
    /// The first violation found (minimized if configured), or `None` if
    /// every reachable state passed.
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// Whether every explored state satisfied every invariant.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }
}

/// Exhaustively explores every delivery order of `build()`'s event DAG
/// under `cfg`, returning statistics and the first violation found.
///
/// # Panics
///
/// Panics if the built system reports a wiring error — that is a
/// configuration bug, not a protocol state to explore.
#[must_use]
pub fn explore(build: BuildFn<'_>, cfg: &CheckConfig) -> ExploreReport {
    let mut st = Search {
        build,
        cfg,
        visited: HashSet::new(),
        states: 0,
        terminals: 0,
        deepest: 0,
        truncated: false,
        stop: false,
        violation: None,
    };
    let mut sys = fresh(build);
    let mut path = Vec::new();
    st.dfs(&mut sys, &mut path);

    let counterexample = st.violation.take().map(|(kind, detail, choices)| {
        if cfg.minimize {
            minimize(build, cfg)
                .unwrap_or_else(|| render_path(build, kind, detail, &choices, false))
        } else {
            render_path(build, kind, detail, &choices, false)
        }
    });
    ExploreReport {
        states: st.states,
        terminal_states: st.terminals,
        deepest: st.deepest,
        truncated: st.truncated,
        counterexample,
    }
}

/// Builds a system and switches it into choice mode.
fn fresh(build: BuildFn<'_>) -> System {
    let mut sys = build();
    sys.enable_choice_mode().expect("litmus systems must be wired correctly");
    sys
}

/// Rebuilds a system and replays a choice path.
fn replay(build: BuildFn<'_>, path: &[usize]) -> System {
    let mut sys = fresh(build);
    for &i in path {
        sys.step_choice(i).expect("replayed step cannot fail");
    }
    sys
}

/// Renders a choice path into a [`Counterexample`] by replaying it and
/// recording each chosen event's description.
fn render_path(
    build: BuildFn<'_>,
    kind: ViolationKind,
    detail: String,
    choices: &[usize],
    minimized: bool,
) -> Counterexample {
    let mut sys = fresh(build);
    let mut steps = Vec::with_capacity(choices.len());
    for &i in choices {
        steps.push(sys.pending_events()[i].to_string());
        sys.step_choice(i).expect("replayed step cannot fail");
    }
    let flight = sys.flight_tail();
    Counterexample { kind, detail, choices: choices.to_vec(), steps, minimized, flight }
}

struct Search<'a> {
    build: BuildFn<'a>,
    cfg: &'a CheckConfig,
    visited: HashSet<u64>,
    states: u64,
    terminals: u64,
    deepest: usize,
    truncated: bool,
    stop: bool,
    violation: Option<(ViolationKind, String, Vec<usize>)>,
}

impl fmt::Debug for Search<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Search").field("states", &self.states).finish_non_exhaustive()
    }
}

impl Search<'_> {
    fn dfs(&mut self, sys: &mut System, path: &mut Vec<usize>) {
        if self.stop {
            return;
        }
        if !self.visited.insert(sys.state_hash()) {
            return;
        }
        self.states += 1;
        self.deepest = self.deepest.max(path.len());
        if self.states >= self.cfg.max_states {
            self.truncated = true;
            self.stop = true;
        }
        let n = sys.choice_count();
        if let Some((kind, detail)) = classify(sys, n, self.cfg) {
            self.violation = Some((kind, detail, path.clone()));
            self.stop = true;
            return;
        }
        if n == 0 {
            self.terminals += 1;
            return;
        }
        if path.len() >= self.cfg.max_depth {
            self.truncated = true;
            return;
        }
        for i in 0..n {
            path.push(i);
            sys.step_choice(i).expect("explored step cannot fail");
            self.dfs(sys, path);
            path.pop();
            if self.stop {
                return;
            }
            if i + 1 < n {
                *sys = replay(self.build, path);
            }
        }
    }
}

/// Checks every invariant at one state. `n` is the pending-choice count
/// (passed in because the caller already fetched it).
fn classify(sys: &System, n: usize, cfg: &CheckConfig) -> Option<(ViolationKind, String)> {
    if let Some(v) = check_coherence(sys) {
        return Some(v);
    }
    if n == 0 {
        if !sys.is_done() {
            if cfg.deadlock_ok {
                return None;
            }
            let busy: Vec<String> =
                sys.deadlock_snapshot().agents.iter().map(String::clone).collect();
            return Some((
                ViolationKind::Stuck,
                format!("nothing deliverable but work remains: [{}]", busy.join("; ")),
            ));
        }
        if let Some(f) = cfg.final_check {
            if let Err(reason) = f(sys) {
                return Some((ViolationKind::FinalState, reason));
            }
        }
    }
    None
}

/// The SWMR and value-coherence invariants over every *settled* line — a
/// line with no directory transaction, no L2 miss outstanding, no parked
/// victim and no pending message touching it. Lines mid-transaction are
/// legitimately incoherent (that is what the transaction is fixing);
/// TCP/TCC copies are exempt by design — VIPER tolerates stale GPU lines
/// until the next acquire.
fn check_coherence(sys: &System) -> Option<(ViolationKind, String)> {
    let mut unsettled: HashSet<LineAddr> = HashSet::new();
    for ev in sys.pending_events() {
        if let PendingKind::Deliver { line, .. } = ev.kind {
            unsettled.insert(LineAddr(line));
        }
    }
    let mut copies: BTreeMap<LineAddr, Vec<(usize, MoesiState, LineData)>> = BTreeMap::new();
    for cp in 0..sys.corepair_count() {
        for la in sys.mshr_lines(cp) {
            unsettled.insert(la);
        }
        for (la, _) in sys.victim_snapshot(cp) {
            unsettled.insert(la);
        }
        for (la, state, data) in sys.l2_snapshot(cp) {
            copies.entry(la).or_default().push((cp, state, data));
        }
    }
    let llc: BTreeMap<LineAddr, (LineData, bool)> =
        sys.llc_snapshot().into_iter().map(|(la, d, dirty)| (la, (d, dirty))).collect();

    for (la, cs) in &copies {
        if unsettled.contains(la) || sys.dir_busy(*la) {
            continue;
        }
        let writers = cs.iter().filter(|(_, s, _)| s.can_write()).count();
        let owners = cs.iter().filter(|(_, s, _)| *s == MoesiState::Owned).count();
        if writers > 1 {
            return Some((
                ViolationKind::Swmr,
                format!("line {:#x}: {writers} writable copies in {}", la.0, describe(cs)),
            ));
        }
        if writers == 1 && cs.len() > 1 {
            return Some((
                ViolationKind::Swmr,
                format!(
                    "line {:#x}: a writable copy coexists with {} other(s) in {}",
                    la.0,
                    cs.len() - 1,
                    describe(cs)
                ),
            ));
        }
        if owners > 1 {
            return Some((
                ViolationKind::Swmr,
                format!("line {:#x}: {owners} Owned copies in {}", la.0, describe(cs)),
            ));
        }
        let first = cs[0].2;
        if cs.iter().any(|(_, _, d)| *d != first) {
            return Some((
                ViolationKind::ValueCoherence,
                format!("line {:#x}: copies disagree in {}", la.0, describe(cs)),
            ));
        }
        let dirty_cached = cs.iter().any(|(_, s, _)| s.forwards_dirty());
        if !dirty_cached {
            // No dirty copy: every clean copy must match the freshest
            // backing — the LLC if it holds the line, else memory.
            let backing = match llc.get(la) {
                Some((d, _)) => *d,
                None => sys.memory_line(*la),
            };
            if first != backing {
                return Some((
                    ViolationKind::ValueCoherence,
                    format!(
                        "line {:#x}: clean copies (word0={:#x}) diverge from backing (word0={:#x})",
                        la.0,
                        first.word(0),
                        backing.word(0)
                    ),
                ));
            }
        }
    }
    None
}

fn describe(cs: &[(usize, MoesiState, LineData)]) -> String {
    let parts: Vec<String> =
        cs.iter().map(|(cp, s, d)| format!("L2[{cp}]:{s:?}(word0={:#x})", d.word(0))).collect();
    format!("[{}]", parts.join(", "))
}

/// Breadth-first search for the *shortest* path to any violating state,
/// using the same visited-set abstraction as the DFS. Returns `None` only
/// if the violation is unreachable within the config budget (possible
/// when the DFS truncated).
fn minimize(build: BuildFn<'_>, cfg: &CheckConfig) -> Option<Counterexample> {
    struct Node {
        parent: usize,
        choice: usize,
    }
    let mut nodes: Vec<Node> = vec![Node { parent: usize::MAX, choice: usize::MAX }];
    let mut visited: HashSet<u64> = HashSet::new();
    let mut frontier: Vec<usize> = vec![0];
    let mut expanded: u64 = 0;

    let path_of = |nodes: &[Node], mut idx: usize| {
        let mut p = Vec::new();
        while nodes[idx].parent != usize::MAX {
            p.push(nodes[idx].choice);
            idx = nodes[idx].parent;
        }
        p.reverse();
        p
    };

    visited.insert(fresh(build).state_hash());
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &idx in &frontier {
            let choices = path_of(&nodes, idx);
            let mut sys = replay(build, &choices);
            let n = sys.choice_count();
            if let Some((kind, detail)) = classify(&sys, n, cfg) {
                return Some(render_path(build, kind, detail, &choices, true));
            }
            expanded += 1;
            if expanded >= cfg.max_states || choices.len() >= cfg.max_depth {
                continue;
            }
            for i in 0..n {
                sys.step_choice(i).expect("minimizer step cannot fail");
                if visited.insert(sys.state_hash()) {
                    nodes.push(Node { parent: idx, choice: i });
                    next.push(nodes.len() - 1);
                }
                if i + 1 < n {
                    sys = replay(build, &choices);
                }
            }
        }
        frontier = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsc_core::SystemBuilder;

    fn empty() -> System {
        SystemBuilder::new(litmus::tiny_config()).build()
    }

    #[test]
    fn empty_system_has_one_terminal_state() {
        let r = explore(&empty, &CheckConfig::default());
        assert!(r.passed());
        // Orders of the initial wake-ups are distinct states, but they
        // all drain into the single completed state.
        assert_eq!(r.terminal_states, 1);
        assert!(r.states >= 1);
        assert!(!r.truncated);
    }

    #[test]
    fn final_check_failures_become_counterexamples() {
        let cfg = CheckConfig {
            final_check: Some(|_s: &System| Err("always wrong".to_owned())),
            ..CheckConfig::default()
        };
        let r = explore(&empty, &cfg);
        let cx = r.counterexample.expect("must fail");
        assert_eq!(cx.kind, ViolationKind::FinalState);
        assert!(cx.minimized);
        assert!(cx.to_string().contains("always wrong"));
        assert_eq!(
            cx.to_perfetto().len(),
            cx.steps.len() + 1 + cx.flight.len(),
            "one instant per step + verdict + flight tail"
        );
    }

    #[test]
    fn state_count_is_deterministic() {
        let a = explore(&empty, &CheckConfig::default());
        let b = explore(&empty, &CheckConfig::default());
        assert_eq!(a.states, b.states);
        assert_eq!(a.terminal_states, b.terminal_states);
    }
}
