//! Directed litmus scenarios for the protocol races PR 1's fault
//! campaigns probed statistically.
//!
//! Each [`Litmus`] is a tiny configuration (2 CorePairs, 1 GPU cluster,
//! 1–2 cache lines, programs of a handful of ops) plus the final-state
//! predicate that every interleaving must satisfy. The harness runs each
//! scenario up to three ways:
//!
//! * **exhaustive, fault-free** — every delivery order via
//!   [`crate::explore`];
//! * **exhaustive, deterministic fault** — same, with a surgical
//!   [`FaultPlan`] (drop-first / duplicate-first) so the race window the
//!   fault opens is also explored in every order;
//! * **seeded sweep** — timed runs under a probabilistic drop plan with
//!   retries enabled, the PR 1 recovery path.
//!
//! Scenarios keep synthetic instruction fetches off
//! (`ifetch_interval = u64::MAX`) and shrink every cache so a rebuilt
//! [`System`] costs microseconds — the explorer rebuilds thousands of
//! times.

use std::collections::VecDeque;
use std::fmt;

use hsc_cluster::{CoreProgram, CpuOp, DmaCommand, GpuOp, WavefrontProgram};
use hsc_mem::{Addr, AtomicKind};
use hsc_noc::{FaultPlan, FaultTargets, RetryPolicy};
use hsc_sim::{SimError, Tick};

use hsc_core::{System, SystemBuilder, SystemConfig};

use crate::{explore, CheckConfig, ExploreReport, FinalCheck};

/// A scripted CPU thread: plays a fixed op list front to back, then
/// retires. Litmus programs never branch on loaded values — the explorer
/// supplies the nondeterminism.
#[derive(Debug)]
pub struct CpuScript {
    label: &'static str,
    ops: VecDeque<CpuOp>,
}

impl CpuScript {
    /// A thread that executes `ops` in order and finishes.
    #[must_use]
    pub fn new(label: &'static str, ops: Vec<CpuOp>) -> Self {
        CpuScript { label, ops: ops.into() }
    }
}

impl CoreProgram for CpuScript {
    fn next_op(&mut self, _last: Option<u64>) -> CpuOp {
        self.ops.pop_front().unwrap_or(CpuOp::Done)
    }

    fn label(&self) -> &str {
        self.label
    }
}

/// A scripted GPU wavefront, the [`CpuScript`] counterpart.
#[derive(Debug)]
pub struct GpuScript {
    label: &'static str,
    ops: VecDeque<GpuOp>,
}

impl GpuScript {
    /// A wavefront that executes `ops` in order and finishes.
    #[must_use]
    pub fn new(label: &'static str, ops: Vec<GpuOp>) -> Self {
        GpuScript { label, ops: ops.into() }
    }
}

impl WavefrontProgram for GpuScript {
    fn next_op(&mut self, _last: Option<u64>) -> GpuOp {
        self.ops.pop_front().unwrap_or(GpuOp::Done)
    }

    fn label(&self) -> &str {
        self.label
    }
}

/// Line-aligned base address every scenario races on (line `0x1000`).
pub const A: Addr = Addr(0x4_0000);
/// The second 64-bit word of line `A`.
pub const A_W1: Addr = Addr(0x4_0008);
/// A line 128 bytes above `A` — maps to `A`'s set in the shrunken
/// victim-scenario L2 (128 B, direct-mapped, 64 B lines ⇒ 2 sets, both
/// even line numbers land in set 0), forcing an eviction of `A`.
pub const B: Addr = Addr(0x4_0080);

/// Retry policy for seeded sweeps: short timeout so lost requests
/// re-send within a tiny run, bounded retries so drop storms end in a
/// diagnosable deadlock instead of livelock.
pub const SWEEP_RETRY: RetryPolicy = RetryPolicy { timeout: 50_000, max_retries: 8 };

/// Event budget for one timed sweep run (tiny programs finish in
/// thousands of events; this bounds retry-storm pathologies).
pub const SWEEP_EVENT_BUDGET: u64 = 2_000_000;

/// The smallest system that still exercises every agent type: 2
/// CorePairs, 1 single-CU GPU cluster, DMA, directory and memory, with
/// every cache shrunk to a few lines and synthetic i-fetches off.
#[must_use]
pub fn tiny_config() -> SystemConfig {
    let mut cfg = SystemConfig { corepairs: 2, gpu_clusters: 1, ..SystemConfig::default() };
    cfg.cpu.l1d_bytes = 128;
    cfg.cpu.l1d_ways = 2;
    cfg.cpu.l1i_bytes = 128;
    cfg.cpu.l1i_ways = 2;
    cfg.cpu.l2_bytes = 512;
    cfg.cpu.l2_ways = 2;
    cfg.cpu.ifetch_interval = u64::MAX;
    cfg.gpu.cus = 1;
    cfg.gpu.tcp_bytes = 128;
    cfg.gpu.tcp_ways = 2;
    cfg.gpu.tcc_bytes = 256;
    cfg.gpu.tcc_ways = 2;
    cfg.gpu.sqc_bytes = 128;
    cfg.gpu.sqc_ways = 2;
    cfg.gpu.ifetch_interval = u64::MAX;
    cfg.uncore.llc_bytes = 1024;
    cfg.uncore.llc_ways = 2;
    cfg.uncore.dir_entries = 64;
    cfg.uncore.dir_ways = 4;
    cfg
}

fn apply_knobs(
    mut cfg: SystemConfig,
    faults: Option<FaultPlan>,
    retry: Option<RetryPolicy>,
) -> SystemConfig {
    cfg.faults = faults;
    if let Some(r) = retry {
        cfg = cfg.with_retry_everywhere(r);
    }
    cfg
}

/// Reads the coherent final value of `a` and checks it against the
/// scenario's allowed outcomes.
///
/// # Errors
///
/// Describes the divergence when the value is not in `allowed`.
pub fn expect_word(sys: &System, a: Addr, allowed: &[u64]) -> Result<(), String> {
    let got = sys.final_word(a);
    if allowed.contains(&got) {
        Ok(())
    } else {
        Err(format!("word {a}: final value {got:#x} not in allowed set {allowed:?}"))
    }
}

/// One directed scenario: a builder, the faults that probe it, and the
/// predicate its completed runs must satisfy.
pub struct Litmus {
    /// Stable scenario name (CLI selector, report key).
    pub name: &'static str,
    /// One-line description of the race under test.
    pub describe: &'static str,
    build: fn(Option<FaultPlan>, Option<RetryPolicy>) -> System,
    /// Deterministic surgical fault for the faulty exhaustive pass
    /// (`None` = fault-free exploration only).
    pub fault_plan: Option<FaultPlan>,
    /// Whether stuck states are an accepted outcome under `fault_plan`
    /// (true for message loss with retries off — the lost request is
    /// *supposed* to strand its agent).
    pub fault_deadlock_ok: bool,
    /// Seeded probabilistic plan for the timed sweep mode.
    pub sweep_plan: Option<fn(u64) -> FaultPlan>,
    /// Predicate over cleanly completed runs.
    pub check_final: Option<FinalCheck>,
    /// Whether the scenario is explored exhaustively (retry-storm is
    /// sweep-only: retry timers make its state space a timing artifact).
    pub exhaustive: bool,
}

impl fmt::Debug for Litmus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Litmus").field("name", &self.name).finish_non_exhaustive()
    }
}

/// The two exhaustive [`ExploreReport`]s of one scenario.
#[derive(Debug, Clone)]
pub struct LitmusReport {
    /// Scenario name.
    pub name: &'static str,
    /// Fault-free exploration (`None` for sweep-only scenarios).
    pub fault_free: Option<ExploreReport>,
    /// Exploration under the deterministic fault plan.
    pub faulty: Option<ExploreReport>,
}

impl LitmusReport {
    /// Whether every performed exploration passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.fault_free.iter().all(ExploreReport::passed)
            && self.faulty.iter().all(ExploreReport::passed)
    }

    /// The first counterexample, if any exploration found one.
    #[must_use]
    pub fn counterexample(&self) -> Option<&crate::Counterexample> {
        self.fault_free.iter().chain(self.faulty.iter()).find_map(|r| r.counterexample.as_ref())
    }
}

/// Outcome tallies of one seeded fault sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepSummary {
    /// Timed runs executed.
    pub runs: u64,
    /// Runs that completed cleanly (and passed the final check).
    pub completed: u64,
    /// Runs that ended in a diagnosed deadlock (acceptable under loss).
    pub deadlocked: u64,
    /// Human-readable descriptions of unacceptable outcomes: completed
    /// runs with wrong final values, budget blow-ups, wiring errors.
    pub failures: Vec<String>,
}

impl SweepSummary {
    /// Whether no run produced an unacceptable outcome.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl Litmus {
    /// Builds the scenario's system with the given fault/retry knobs.
    #[must_use]
    pub fn build(&self, faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
        (self.build)(faults, retry)
    }

    /// Runs the exhaustive passes: fault-free, then (if the scenario has
    /// one) under its deterministic fault plan. `limits` scales the
    /// search budget; the scenario supplies `final_check`/`deadlock_ok`.
    #[must_use]
    pub fn check_exhaustive(&self, limits: &CheckConfig) -> LitmusReport {
        if !self.exhaustive {
            return LitmusReport { name: self.name, fault_free: None, faulty: None };
        }
        let base =
            CheckConfig { final_check: self.check_final, deadlock_ok: false, ..limits.clone() };
        let build = self.build;
        let fault_free = Some(explore(&|| build(None, None), &base));

        let faulty = self.fault_plan.map(|plan| {
            let cfg = CheckConfig { deadlock_ok: self.fault_deadlock_ok, ..base.clone() };
            explore(&|| build(Some(plan), None), &cfg)
        });
        LitmusReport { name: self.name, fault_free, faulty }
    }

    /// Runs `seeds` timed runs under the scenario's sweep plan with
    /// retries enabled. Completion must satisfy the final check; a
    /// diagnosed deadlock is tallied but accepted (bounded retries give
    /// up under sustained loss by design).
    #[must_use]
    pub fn sweep(&self, seeds: std::ops::Range<u64>) -> SweepSummary {
        let mut summary = SweepSummary::default();
        let Some(plan_fn) = self.sweep_plan else {
            return summary;
        };
        for seed in seeds {
            summary.runs += 1;
            let mut sys = self.build(Some(plan_fn(seed)), Some(SWEEP_RETRY));
            match sys.run(SWEEP_EVENT_BUDGET) {
                Ok(_) => {
                    summary.completed += 1;
                    if let Some(f) = self.check_final {
                        if let Err(reason) = f(&sys) {
                            summary.failures.push(format!(
                                "{} seed {seed}: completed wrong: {reason}",
                                self.name
                            ));
                        }
                    }
                }
                Err(SimError::Deadlock { .. }) => summary.deadlocked += 1,
                Err(e) => summary.failures.push(format!("{} seed {seed}: {e}", self.name)),
            }
        }
        summary
    }

    /// Every directed scenario, in documentation order.
    #[must_use]
    pub fn catalog() -> Vec<Litmus> {
        vec![
            Litmus {
                name: "two_writers",
                describe: "two CPUs store to different words of one line; both stores must survive",
                build: build_two_writers,
                fault_plan: None,
                fault_deadlock_ok: false,
                sweep_plan: Some(drop_sweep),
                check_final: Some(final_two_writers),
                exhaustive: true,
            },
            Litmus {
                name: "victim_vs_probe",
                describe: "a dirty victim is in flight while another CPU's read probes the line",
                build: build_victim_vs_probe,
                fault_plan: Some(FaultPlan::drop_first("VicDirty")),
                fault_deadlock_ok: true,
                sweep_plan: Some(drop_sweep),
                check_final: Some(final_victim_vs_probe),
                exhaustive: true,
            },
            Litmus {
                name: "dup_reply",
                describe: "the directory's data response is duplicated; the stale second copy must be ignored",
                build: build_dup_reply,
                fault_plan: Some(dup_first_resp()),
                fault_deadlock_ok: false,
                sweep_plan: Some(drop_sweep),
                check_final: Some(final_dup_reply),
                exhaustive: true,
            },
            Litmus {
                name: "atomic_vs_eviction",
                describe: "CPU atomics race an eviction of the line they increment",
                build: build_atomic_vs_eviction,
                fault_plan: None,
                fault_deadlock_ok: false,
                sweep_plan: Some(drop_sweep),
                check_final: Some(final_atomic_vs_eviction),
                exhaustive: true,
            },
            Litmus {
                name: "dma_vs_dirty_l2",
                describe: "a DMA read races a CPU store dirtying the same line in an L2",
                build: build_dma_vs_dirty_l2,
                fault_plan: None,
                fault_deadlock_ok: false,
                sweep_plan: Some(drop_sweep),
                check_final: Some(final_dma_vs_dirty_l2),
                exhaustive: true,
            },
            Litmus {
                name: "slc_atomic_vs_probe",
                describe: "a GPU system-scope atomic at the directory races a CPU store to the line",
                build: build_slc_atomic_vs_probe,
                fault_plan: None,
                fault_deadlock_ok: false,
                sweep_plan: Some(drop_sweep),
                check_final: Some(final_slc_atomic_vs_probe),
                exhaustive: true,
            },
            Litmus {
                name: "retry_storm",
                describe: "sustained request loss with retries on: recover or deadlock cleanly, never corrupt",
                build: build_retry_storm,
                fault_plan: None,
                fault_deadlock_ok: false,
                sweep_plan: Some(heavy_drop_sweep),
                check_final: Some(final_retry_storm),
                exhaustive: false,
            },
        ]
    }

    /// Looks a scenario up by its stable name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Litmus> {
        Litmus::catalog().into_iter().find(|l| l.name == name)
    }
}

/// 20 % loss on the retryable request classes (`Atomic` is excluded by
/// [`FaultTargets::RetryableRequests`]: it is not idempotent).
fn drop_sweep(seed: u64) -> FaultPlan {
    FaultPlan::drops(seed, 200_000).with_targets(FaultTargets::RetryableRequests)
}

/// 50 % loss — the retry-storm regime.
fn heavy_drop_sweep(seed: u64) -> FaultPlan {
    FaultPlan::drops(seed, 500_000).with_targets(FaultTargets::RetryableRequests)
}

/// Duplicates exactly the first directory data response.
fn dup_first_resp() -> FaultPlan {
    FaultPlan {
        seed: 0,
        drop_ppm: 0,
        dup_ppm: 1_000_000,
        delay_ppm: 0,
        extra_delay: 0,
        targets: FaultTargets::Class("Resp"),
        max_faults: 1,
    }
}

fn build_two_writers(faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
    let mut b = SystemBuilder::new(apply_knobs(tiny_config(), faults, retry));
    // Threads place two-per-pair; the idle filler pushes w1 to pair 1 so
    // the writers are distinct coherence agents.
    b.add_cpu_thread(Box::new(CpuScript::new("w0", vec![CpuOp::Store(A, 1)])));
    b.add_cpu_thread(Box::new(CpuScript::new("idle", vec![])));
    b.add_cpu_thread(Box::new(CpuScript::new("w1", vec![CpuOp::Store(A_W1, 2)])));
    b.build()
}

fn final_two_writers(sys: &System) -> Result<(), String> {
    expect_word(sys, A, &[1])?;
    expect_word(sys, A_W1, &[2])
}

fn build_victim_vs_probe(faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
    let mut cfg = tiny_config();
    // Direct-mapped 2-line L2: the store to B evicts A's dirty copy, so
    // the VicDirty write-back is in flight exactly when pair 1's read
    // probes line A.
    cfg.cpu.l2_bytes = 128;
    cfg.cpu.l2_ways = 1;
    let mut b = SystemBuilder::new(apply_knobs(cfg, faults, retry));
    b.add_cpu_thread(Box::new(CpuScript::new(
        "victimizer",
        vec![CpuOp::Store(A, 1), CpuOp::Store(B, 2)],
    )));
    b.add_cpu_thread(Box::new(CpuScript::new("idle", vec![])));
    b.add_cpu_thread(Box::new(CpuScript::new("reader", vec![CpuOp::Load(A)])));
    b.build()
}

fn final_victim_vs_probe(sys: &System) -> Result<(), String> {
    expect_word(sys, A, &[1])?;
    expect_word(sys, B, &[2])
}

fn build_dup_reply(faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
    let mut b = SystemBuilder::new(apply_knobs(tiny_config(), faults, retry));
    b.add_cpu_thread(Box::new(CpuScript::new("writer", vec![CpuOp::Store(A, 1)])));
    b.add_cpu_thread(Box::new(CpuScript::new("idle", vec![])));
    b.add_cpu_thread(Box::new(CpuScript::new("reader", vec![CpuOp::Load(A)])));
    b.build()
}

fn final_dup_reply(sys: &System) -> Result<(), String> {
    expect_word(sys, A, &[1])
}

fn build_atomic_vs_eviction(faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
    let mut cfg = tiny_config();
    cfg.cpu.l2_bytes = 128;
    cfg.cpu.l2_ways = 1;
    let mut b = SystemBuilder::new(apply_knobs(cfg, faults, retry));
    b.add_cpu_thread(Box::new(CpuScript::new(
        "adder0",
        vec![CpuOp::Atomic(A, AtomicKind::FetchAdd(1)), CpuOp::Store(B, 7)],
    )));
    b.add_cpu_thread(Box::new(CpuScript::new("idle", vec![])));
    b.add_cpu_thread(Box::new(CpuScript::new(
        "adder1",
        vec![CpuOp::Atomic(A, AtomicKind::FetchAdd(1))],
    )));
    b.init_word(A, 10);
    b.build()
}

fn final_atomic_vs_eviction(sys: &System) -> Result<(), String> {
    expect_word(sys, A, &[12])?;
    expect_word(sys, B, &[7])
}

fn build_dma_vs_dirty_l2(faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
    let mut b = SystemBuilder::new(apply_knobs(tiny_config(), faults, retry));
    b.add_cpu_thread(Box::new(CpuScript::new("writer", vec![CpuOp::Store(A, 5)])));
    b.add_dma(DmaCommand::Read { base: A, lines: 1, at: Tick(0) });
    b.build()
}

fn final_dma_vs_dirty_l2(sys: &System) -> Result<(), String> {
    expect_word(sys, A, &[5])?;
    // The DMA read serialized either before or after the store; any
    // other value means it saw a torn or stale-after-probe line.
    let read = sys
        .dma_read_data()
        .into_iter()
        .find(|(la, _)| *la == A.line())
        .ok_or_else(|| "DMA read returned no data for line A".to_owned())?;
    let got = read.1.word_at(A);
    if got == 0 || got == 5 {
        Ok(())
    } else {
        Err(format!("DMA read observed {got:#x}, neither initial 0 nor stored 5"))
    }
}

fn build_slc_atomic_vs_probe(faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
    let mut b = SystemBuilder::new(apply_knobs(tiny_config(), faults, retry));
    b.add_cpu_thread(Box::new(CpuScript::new("writer", vec![CpuOp::Store(A, 10)])));
    b.add_wavefront(Box::new(GpuScript::new(
        "slc-adder",
        vec![GpuOp::AtomicSlc(A, AtomicKind::FetchAdd(1))],
    )));
    b.build()
}

fn final_slc_atomic_vs_probe(sys: &System) -> Result<(), String> {
    // atomic-then-store ⇒ 10; store-then-atomic ⇒ 11.
    expect_word(sys, A, &[10, 11])
}

fn build_retry_storm(faults: Option<FaultPlan>, retry: Option<RetryPolicy>) -> System {
    let mut b = SystemBuilder::new(apply_knobs(tiny_config(), faults, retry));
    b.add_cpu_thread(Box::new(CpuScript::new(
        "w0",
        vec![CpuOp::Store(A, 1), CpuOp::Load(A_W1), CpuOp::Store(B, 3)],
    )));
    b.add_cpu_thread(Box::new(CpuScript::new("idle", vec![])));
    b.add_cpu_thread(Box::new(CpuScript::new("w1", vec![CpuOp::Store(A_W1, 2), CpuOp::Load(A)])));
    b.build()
}

fn final_retry_storm(sys: &System) -> Result<(), String> {
    expect_word(sys, A, &[1])?;
    expect_word(sys, A_W1, &[2])?;
    expect_word(sys, B, &[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let cat = Litmus::catalog();
        for (i, l) in cat.iter().enumerate() {
            assert!(Litmus::by_name(l.name).is_some());
            assert!(
                cat.iter().skip(i + 1).all(|o| o.name != l.name),
                "duplicate litmus name {}",
                l.name
            );
        }
        assert!(Litmus::by_name("no_such_scenario").is_none());
    }

    #[test]
    fn addresses_share_a_set_in_the_victim_l2() {
        // 128 B direct-mapped L2 with 64 B lines ⇒ 2 sets; A and B must
        // collide for the victim scenario to evict.
        assert_eq!(A.line().0 % 2, B.line().0 % 2);
        assert_ne!(A.line(), B.line());
        assert_eq!(A_W1.line(), A.line());
    }

    #[test]
    fn scripts_replay_their_ops_then_finish() {
        let mut s = CpuScript::new("t", vec![CpuOp::Store(A, 1)]);
        assert_eq!(s.next_op(None), CpuOp::Store(A, 1));
        assert_eq!(s.next_op(None), CpuOp::Done);
        assert_eq!(s.label(), "t");
        let mut g = GpuScript::new("g", vec![GpuOp::Acquire]);
        assert_eq!(g.next_op(None), GpuOp::Acquire);
        assert_eq!(g.next_op(None), GpuOp::Done);
    }

    #[test]
    fn timed_runs_of_every_exhaustive_scenario_complete_and_pass() {
        // Before paying for exploration, every scenario must at least
        // pass under the simulator's native timed order.
        for l in Litmus::catalog() {
            let mut sys = l.build(None, None);
            sys.run(SWEEP_EVENT_BUDGET).unwrap_or_else(|e| panic!("{}: {e}", l.name));
            if let Some(f) = l.check_final {
                f(&sys).unwrap_or_else(|e| panic!("{}: {e}", l.name));
            }
        }
    }
}
