//! `hsc-repro` — umbrella crate of the HSC reproduction.
//!
//! Re-exports the whole workspace under one name so the examples and
//! integration tests (and downstream users who just want "the simulator")
//! need a single dependency. See README.md for the architecture overview
//! and DESIGN.md for the paper-to-module map.
//!
//! # Quick start
//!
//! ```
//! use hsc_repro::prelude::*;
//!
//! // Run the input-partitioned histogram on the baseline protocol and on
//! // the paper's sharer-tracking directory, both functionally verified.
//! let bench = Hsti { elements: 256, bins: 8, cpu_threads: 2, wavefronts: 2, seed: 1 };
//! let base = run_workload(&bench, CoherenceConfig::baseline());
//! let trk = run_workload(&bench, CoherenceConfig::sharer_tracking());
//! assert!(trk.metrics.probes_sent < base.metrics.probes_sent);
//! ```

#![warn(missing_docs)]

pub use hsc_bench as bench;
pub use hsc_check as check;
pub use hsc_cluster as cluster;
pub use hsc_core as core;
pub use hsc_mem as mem;
pub use hsc_noc as noc;
pub use hsc_obs as obs;
pub use hsc_sim as sim;
pub use hsc_workloads as workloads;

/// The names almost every user of the simulator needs.
pub mod prelude {
    pub use hsc_bench::par::{Campaign, JobError, JobResult, Parallelism};
    pub use hsc_check::litmus::Litmus;
    pub use hsc_check::{explore, CheckConfig, Counterexample, ExploreReport, ViolationKind};
    pub use hsc_cluster::{CoreProgram, CpuOp, GpuOp, WavefrontProgram};
    pub use hsc_core::{
        CleanVictimPolicy, CoherenceConfig, DirReplacementPolicy, DirectoryMode, LlcWritePolicy,
        Metrics, System, SystemBuilder, SystemConfig, TraceConfig,
    };
    pub use hsc_mem::{Addr, AtomicKind, LineAddr};
    pub use hsc_noc::{FaultPlan, FaultTargets, RetryPolicy};
    pub use hsc_obs::{ObsConfig, ObsData, PerfettoTracer, RunReport};
    pub use hsc_sim::{DeadlockSnapshot, PendingEvent, PendingKind, RunOutcome, SimError};
    pub use hsc_workloads::{
        all_workloads, collaborative_workloads, extension_workloads, run_workload,
        run_workload_observed, run_workload_on, try_run_workload_on, workload_by_name, Bs, Cedd,
        Hsti, Hsto, ObservedRun, Pad, Rscd, Rsct, RunResult, Sc, Tq, Tqh, Trns, Workload,
        WorkloadError,
    };
}
