//! Directory-pressure sweep: how the §IV tracking directory behaves as
//! its capacity shrinks and entry evictions (transient-B backward
//! invalidations) take over — the capacity trade-off §IV-A.1 discusses.
//!
//! ```sh
//! cargo run --release --example directory_sweep
//! ```

use hsc_repro::prelude::*;

fn main() {
    let bench = Cedd {
        frames: 4,
        pixels: 512,
        cpu_per_stage: 2,
        wfs_per_stage: 4,
        seed: 41,
        frame_interval: 30_000,
    };
    println!(
        "{:>10} {:>10} {:>9} {:>12} {:>14}",
        "dirEntries", "cycles", "probes", "entryEvicts", "backInvProbes"
    );
    for entries in [128u64, 256, 512, 1024, 2048, 4096] {
        let mut cfg = SystemConfig::scaled(CoherenceConfig::sharer_tracking());
        cfg.uncore.dir_entries = entries;
        let r = run_workload_on(&bench, cfg);
        println!(
            "{:>10} {:>10} {:>9} {:>12} {:>14}",
            entries,
            r.metrics.gpu_cycles,
            r.metrics.probes_sent,
            r.metrics.stats.get("dir.entry_evictions"),
            r.metrics.stats.get("dir.backinval_probes"),
        );
    }
    println!("\nAs the directory shrinks, backward invalidations climb and the probe");
    println!("savings erode — the inclusion-policy cost discussed in §IV-A.1.");
}
