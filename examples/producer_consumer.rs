//! The paper's motivating workload shape: a CPU-produced, GPU-consumed
//! task queue (the CHAI `tq` benchmark), compared across the baseline and
//! every enhancement tier.
//!
//! ```sh
//! cargo run --release --example producer_consumer
//! ```
//!
//! Watch three things move as the enhancements stack up, exactly as in
//! the paper's §VI: runtime (Fig. 4/6), memory accesses (Fig. 5) and
//! directory probes (Fig. 7).

use hsc_repro::prelude::*;

fn main() {
    let bench =
        Tq { tasks: 512, producers: 4, cpu_consumers: 4, wavefronts: 8, compute: 40, seed: 17 };
    let tiers: [(&str, CoherenceConfig); 5] = [
        ("baseline (stateless dir, WT LLC)", CoherenceConfig::baseline()),
        ("+ no WB of clean victims (III-B)", CoherenceConfig::no_wb_clean_victims()),
        ("+ write-back LLC (III-C)", CoherenceConfig::llc_write_back_l3_on_wt()),
        ("+ owner tracking (IV-A)", CoherenceConfig::owner_tracking()),
        ("+ sharer tracking (IV-B)", CoherenceConfig::sharer_tracking()),
    ];
    println!(
        "{:<36} {:>10} {:>9} {:>8} {:>8}",
        "configuration", "cycles", "probes", "memRd", "memWr"
    );
    let mut base_cycles = None;
    for (name, cfg) in tiers {
        let r = run_workload_on(&bench, SystemConfig::scaled(cfg));
        let base = *base_cycles.get_or_insert(r.metrics.gpu_cycles);
        println!(
            "{:<36} {:>10} {:>9} {:>8} {:>8}   ({:+.1}% vs baseline)",
            name,
            r.metrics.gpu_cycles,
            r.metrics.probes_sent,
            r.metrics.mem_reads,
            r.metrics.mem_writes,
            100.0 * (1.0 - r.metrics.gpu_cycles as f64 / base as f64),
        );
    }
    println!("\nEvery run is functionally verified: all 512 tasks were produced,");
    println!("claimed exactly once, processed and their results checked.");
}
