//! Atomic contention under the two histogram partitionings: `hsti`
//! (shared bins, heavy system-scope atomics) vs `hsto` (private bins,
//! read-only sharing) — the paper's example of which collaboration styles
//! the coherence enhancements reward.
//!
//! ```sh
//! cargo run --release --example histogram_contention
//! ```

use hsc_repro::prelude::*;

fn run(name: &str, w: &dyn Workload) {
    println!("--- {name}: {} ---", w.description());
    let base = run_workload_on(w, SystemConfig::scaled(CoherenceConfig::baseline()));
    let trk = run_workload_on(w, SystemConfig::scaled(CoherenceConfig::sharer_tracking()));
    println!(
        "baseline : {:>9} cycles, {:>8} probes, {:>6} atomics at the directory",
        base.metrics.gpu_cycles,
        base.metrics.probes_sent,
        base.metrics.stats.get("dir.requests.Atomic"),
    );
    println!(
        "tracking : {:>9} cycles, {:>8} probes   → {:+.1}% cycles, {:+.1}% probes",
        trk.metrics.gpu_cycles,
        trk.metrics.probes_sent,
        100.0 * (1.0 - trk.metrics.gpu_cycles as f64 / base.metrics.gpu_cycles as f64),
        100.0 * (1.0 - trk.metrics.probes_sent as f64 / base.metrics.probes_sent as f64),
    );
    println!();
}

fn main() {
    let hsti = Hsti { elements: 4096, bins: 32, cpu_threads: 8, wavefronts: 16, seed: 11 };
    let hsto = Hsto { elements: 4096, bins: 96, cpu_threads: 8, wavefronts: 16, seed: 23 };
    run("hsti", &hsti);
    run("hsto", &hsto);
    println!("hsti's shared-bin atomics make it probe-bound — precisely the traffic");
    println!("the state-tracking directory elides; hsto barely probes to begin with.");
}
