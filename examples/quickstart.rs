//! Quickstart: build a system by hand, run your own CPU thread and GPU
//! wavefront against it, and read the metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! # watch one cache line's protocol traffic on stderr:
//! cargo run --release --example quickstart -- --trace-line 16386
//! ```
//!
//! The scenario is a minimal CPU→GPU handoff: the CPU writes a value and
//! raises a flag; a GPU wavefront polls the flag with a system-scope
//! atomic, acquires, reads the value, and writes a transformed result the
//! CPU-side verification then checks.

use hsc_repro::prelude::*;

const VALUE: Addr = Addr(0x10_0000);
const FLAG: Addr = Addr(0x10_0040);
const RESULT: Addr = Addr(0x10_0080);

/// The CPU side: store the payload, then publish the flag.
#[derive(Debug, Default)]
struct Publisher {
    step: u32,
}

impl CoreProgram for Publisher {
    fn next_op(&mut self, _last: Option<u64>) -> CpuOp {
        self.step += 1;
        match self.step {
            1 => CpuOp::Store(VALUE, 21),
            2 => CpuOp::Store(FLAG, 1),
            _ => CpuOp::Done,
        }
    }
}

/// The GPU side: poll the flag, acquire, read, compute, publish.
#[derive(Debug, Default)]
struct Doubler {
    step: u32,
    seen: u64,
}

impl WavefrontProgram for Doubler {
    fn next_op(&mut self, last: Option<u64>) -> GpuOp {
        match self.step {
            0 => {
                // Poll the flag at system scope until it becomes 1.
                if last == Some(1) {
                    self.step = 1;
                    return GpuOp::Acquire;
                }
                GpuOp::AtomicSlc(FLAG, AtomicKind::FetchAdd(0))
            }
            1 => {
                self.step = 2;
                GpuOp::VecLoad(vec![VALUE])
            }
            2 => {
                self.seen = last.expect("payload load");
                self.step = 3;
                GpuOp::VecStore(vec![(RESULT, self.seen * 2)])
            }
            3 => {
                self.step = 4;
                GpuOp::Release
            }
            _ => GpuOp::Done,
        }
    }
}

/// Parses `--trace-line <n>` (decimal line number = addr/64), the
/// pattern `TraceConfig` docs describe: tracing is configured through
/// the builder, so tools that want a knob parse it themselves.
fn trace_from_args() -> TraceConfig {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-line" {
            let n = args
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--trace-line takes a decimal line number");
            return TraceConfig::line(n);
        }
    }
    TraceConfig::off()
}

fn main() {
    let cfg = SystemConfig::with_coherence(CoherenceConfig::sharer_tracking());
    let mut b = SystemBuilder::new(cfg);
    b.with_trace(trace_from_args());
    b.add_cpu_thread(Box::new(Publisher::default()));
    b.add_wavefront(Box::new(Doubler::default()));
    let mut sys = b.build();
    let m = sys.run(10_000_000).expect("quickstart run completes");

    assert_eq!(sys.final_word(RESULT), 42, "the GPU saw the CPU's 21 and doubled it");
    println!("result               = {}", sys.final_word(RESULT));
    println!("simulated GPU cycles = {}", m.gpu_cycles);
    println!("directory probes     = {}", m.probes_sent);
    println!("memory reads/writes  = {}/{}", m.mem_reads, m.mem_writes);
    println!("\nIt works: a coherent CPU→GPU handoff through the simulated APU.");
}
